//! Saving and restoring trained parameters.
//!
//! The format is a small self-describing little-endian binary: a magic
//! string, the parameter count, then each parameter's shape and `f32` data
//! in network visitation order. Loading validates the whole file — magic,
//! counts, ranks, sizes and shapes — against the receiving network before
//! touching a single weight, and every failure mode is a typed
//! [`CheckpointError`] (never a panic, never a half-restored network), so
//! callers can distinguish a corrupted file from an architecture mismatch.

use crate::network::Snn;
use crate::{Result, SnnError};
use std::fmt;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"DTSNN01\n";
/// Ranks above this are treated as corruption, not data.
const MAX_RANK: usize = 8;

/// Typed failure modes of checkpoint I/O. Corrupted, truncated and hostile
/// files all map to a precise variant; loading never panics and never
/// allocates based on unvalidated sizes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The underlying filesystem operation failed.
    Io {
        /// Operation that failed (`"create"`, `"write"`, `"open"`, `"read"`).
        op: &'static str,
        /// The OS error rendered as text.
        message: String,
    },
    /// The file does not start with the DT-SNN checkpoint magic.
    BadMagic,
    /// The file ends before the declared data does.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the decoder needed there.
        needed: usize,
        /// Bytes actually available in the file.
        available: usize,
    },
    /// A parameter declares a rank beyond anything the tensor library
    /// produces — corruption, not a real shape.
    ImplausibleRank {
        /// Parameter index within the checkpoint.
        param: usize,
        /// The declared rank.
        rank: usize,
    },
    /// A parameter's declared dimensions overflow when multiplied — a
    /// hostile or corrupted size field, rejected before any allocation.
    OversizedTensor {
        /// Parameter index within the checkpoint.
        param: usize,
        /// The declared dimensions.
        dims: Vec<usize>,
    },
    /// Decoding consumed the declared parameters but bytes remain — the
    /// file does not parse as exactly one checkpoint.
    TrailingBytes {
        /// Unconsumed bytes after the last parameter.
        extra: usize,
    },
    /// The checkpoint stores a different number of parameters than the
    /// receiving network owns.
    ParamCountMismatch {
        /// Parameters in the checkpoint.
        checkpoint: usize,
        /// Parameters in the network.
        network: usize,
    },
    /// A parameter's stored shape disagrees with the receiving network's —
    /// restoring into a different architecture.
    ShapeMismatch {
        /// Parameter index (visitation order).
        param: usize,
        /// Shape stored in the checkpoint.
        checkpoint: Vec<usize>,
        /// Shape the network expects.
        network: Vec<usize>,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { op, message } => {
                write!(f, "checkpoint {op} failed: {message}")
            }
            CheckpointError::BadMagic => write!(f, "not a DT-SNN checkpoint (bad magic)"),
            CheckpointError::Truncated { offset, needed, available } => write!(
                f,
                "truncated checkpoint: needed {needed} bytes at offset {offset}, {available} in file"
            ),
            CheckpointError::ImplausibleRank { param, rank } => {
                write!(f, "parameter {param}: implausible tensor rank {rank}")
            }
            CheckpointError::OversizedTensor { param, dims } => {
                write!(f, "parameter {param}: dimensions {dims:?} overflow the address space")
            }
            CheckpointError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after the last parameter")
            }
            CheckpointError::ParamCountMismatch { checkpoint, network } => write!(
                f,
                "checkpoint has {checkpoint} parameters, network has {network}"
            ),
            CheckpointError::ShapeMismatch { param, checkpoint, network } => write!(
                f,
                "parameter {param}: checkpoint shape {checkpoint:?} vs network {network:?}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes every learnable parameter of `network` to `path`.
///
/// # Errors
///
/// Returns [`SnnError::Checkpoint`] wrapping [`CheckpointError::Io`] on any
/// filesystem failure.
pub fn save_params(network: &mut Snn, path: impl AsRef<Path>) -> Result<()> {
    let mut blob: Vec<u8> = Vec::new();
    blob.extend_from_slice(MAGIC);
    let mut count: u32 = 0;
    network.visit_params(&mut |_| count += 1);
    blob.extend_from_slice(&count.to_le_bytes());
    network.visit_params(&mut |p| {
        let dims = p.value.dims();
        blob.extend_from_slice(&(dims.len() as u32).to_le_bytes());
        for &d in dims {
            blob.extend_from_slice(&(d as u32).to_le_bytes());
        }
        for &v in p.value.data() {
            blob.extend_from_slice(&v.to_le_bytes());
        }
    });
    let io = |op: &'static str| {
        move |e: std::io::Error| {
            SnnError::Checkpoint(CheckpointError::Io { op, message: e.to_string() })
        }
    };
    let mut file = std::fs::File::create(path.as_ref()).map_err(io("create"))?;
    file.write_all(&blob).map_err(io("write"))?;
    Ok(())
}

/// Restores parameters saved by [`save_params`] into `network`.
///
/// The entire file is validated before any weight is written: on error the
/// network is untouched.
///
/// # Errors
///
/// Returns [`SnnError::Checkpoint`] with the precise [`CheckpointError`]
/// variant: `Io` for filesystem failures, `BadMagic`/`Truncated`/
/// `ImplausibleRank`/`OversizedTensor`/`TrailingBytes` for malformed files,
/// `ParamCountMismatch`/`ShapeMismatch` for architecture disagreements.
pub fn load_params(network: &mut Snn, path: impl AsRef<Path>) -> Result<()> {
    let mut blob = Vec::new();
    let io = |op: &'static str| {
        move |e: std::io::Error| {
            SnnError::Checkpoint(CheckpointError::Io { op, message: e.to_string() })
        }
    };
    std::fs::File::open(path.as_ref())
        .map_err(io("open"))?
        .read_to_end(&mut blob)
        .map_err(io("read"))?;
    let mut cursor = Cursor { blob: &blob, pos: 0 };
    if cursor.take(MAGIC.len())? != MAGIC {
        return Err(CheckpointError::BadMagic.into());
    }
    let count = cursor.u32()? as usize;
    let mut expected = 0usize;
    network.visit_params(&mut |_| expected += 1);
    if count != expected {
        return Err(
            CheckpointError::ParamCountMismatch { checkpoint: count, network: expected }.into()
        );
    }
    // decode all parameters first so a truncated file cannot leave the
    // network half-restored
    let mut decoded: Vec<(Vec<usize>, Vec<f32>)> = Vec::with_capacity(count);
    for param in 0..count {
        let rank = cursor.u32()? as usize;
        if rank > MAX_RANK {
            return Err(CheckpointError::ImplausibleRank { param, rank }.into());
        }
        let mut dims = Vec::with_capacity(rank);
        for _ in 0..rank {
            dims.push(cursor.u32()? as usize);
        }
        // size fields are untrusted: reject overflow before computing a byte
        // count, and locate the bytes before allocating for them
        let n = dims
            .iter()
            .try_fold(1usize, |acc, &d| acc.checked_mul(d))
            .and_then(|n| n.checked_mul(4).map(|_| n))
            .ok_or(CheckpointError::OversizedTensor { param, dims: dims.clone() })?;
        let bytes = cursor.take(n * 4)?;
        let data = bytes
            .chunks_exact(4)
            .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
            .collect();
        decoded.push((dims, data));
    }
    if cursor.pos != blob.len() {
        return Err(CheckpointError::TrailingBytes { extra: blob.len() - cursor.pos }.into());
    }
    // shape check against the live network
    let mut idx = 0;
    let mut shape_err: Option<CheckpointError> = None;
    network.visit_params(&mut |p| {
        if shape_err.is_some() {
            return;
        }
        let (dims, _) = &decoded[idx];
        if p.value.dims() != dims.as_slice() {
            shape_err = Some(CheckpointError::ShapeMismatch {
                param: idx,
                checkpoint: dims.clone(),
                network: p.value.dims().to_vec(),
            });
        }
        idx += 1;
    });
    if let Some(e) = shape_err {
        return Err(e.into());
    }
    // commit
    let mut idx = 0;
    network.visit_params(&mut |p| {
        let (_, data) = &decoded[idx];
        p.value.data_mut().copy_from_slice(data);
        idx += 1;
    });
    Ok(())
}

struct Cursor<'a> {
    blob: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> std::result::Result<&[u8], CheckpointError> {
        if self.pos.checked_add(n).is_none_or(|end| end > self.blob.len()) {
            return Err(CheckpointError::Truncated {
                offset: self.pos,
                needed: n,
                available: self.blob.len(),
            });
        }
        let s = &self.blob[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> std::result::Result<u32, CheckpointError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear};
    use crate::lif::{LifConfig, LifNeuron};
    use crate::Mode;
    use dtsnn_tensor::{Tensor, TensorRng};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("dtsnn-ckpt-{name}-{}", std::process::id()))
    }

    fn net(seed: u64) -> Snn {
        let mut rng = TensorRng::seed_from(seed);
        Snn::from_layers(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 6, &mut rng)),
            Box::new(LifNeuron::new(LifConfig::default())),
            Box::new(Linear::new(6, 3, &mut rng)),
        ])
    }

    fn params(net: &mut Snn) -> Vec<Tensor> {
        let mut out = Vec::new();
        net.visit_params(&mut |p| out.push(p.value.clone()));
        out
    }

    /// Unwraps the checkpoint variant or panics with the actual error.
    fn checkpoint_err(r: Result<()>) -> CheckpointError {
        match r {
            Err(SnnError::Checkpoint(e)) => e,
            other => panic!("expected a checkpoint error, got {other:?}"),
        }
    }

    #[test]
    fn roundtrip_restores_behaviour() {
        let path = tmp("roundtrip");
        let mut a = net(1);
        save_params(&mut a, &path).unwrap();
        let mut b = net(2); // different init
        let x = Tensor::randn(&[1, 1, 2, 2], 0.5, 0.5, &mut TensorRng::seed_from(3));
        let before = b.forward_timestep(&x, Mode::Eval).unwrap();
        b.reset_state();
        load_params(&mut b, &path).unwrap();
        let after = b.forward_timestep(&x, Mode::Eval).unwrap();
        b.reset_state();
        let mut a2 = net(99);
        load_params(&mut a2, &path).unwrap();
        let reference = a2.forward_timestep(&x, Mode::Eval).unwrap();
        assert_ne!(before, after, "load must change a differently-initialized net");
        assert_eq!(after, reference, "restored nets must agree");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_architecture_with_shape_mismatch() {
        let path = tmp("wrong-arch");
        let mut a = net(1);
        save_params(&mut a, &path).unwrap();
        let mut rng = TensorRng::seed_from(4);
        let mut other = Snn::from_layers(vec![
            Box::new(Flatten::new()),
            Box::new(Linear::new(4, 8, &mut rng)), // different width
            Box::new(LifNeuron::new(LifConfig::default())),
            Box::new(Linear::new(8, 3, &mut rng)),
        ]);
        let before = params(&mut other);
        match checkpoint_err(load_params(&mut other, &path)) {
            CheckpointError::ShapeMismatch { param, checkpoint, network } => {
                assert_eq!(param, 0);
                assert_eq!(checkpoint, vec![6, 4]);
                assert_eq!(network, vec![8, 4]);
            }
            e => panic!("wrong variant: {e:?}"),
        }
        assert_eq!(before, params(&mut other), "failed load must not touch the network");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io() {
        let mut a = net(1);
        match checkpoint_err(load_params(&mut a, "/nonexistent/dir/ckpt.bin")) {
            CheckpointError::Io { op, .. } => assert_eq!(op, "open"),
            e => panic!("wrong variant: {e:?}"),
        }
    }

    #[test]
    fn garbage_is_bad_magic() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a checkpoint").unwrap();
        let mut a = net(1);
        assert_eq!(checkpoint_err(load_params(&mut a, &path)), CheckpointError::BadMagic);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn short_file_is_truncated() {
        let path = tmp("short");
        // magic + count, then nothing: the first rank read trips
        let mut blob = Vec::new();
        blob.extend_from_slice(MAGIC);
        blob.extend_from_slice(&4u32.to_le_bytes());
        std::fs::write(&path, &blob).unwrap();
        let mut a = net(1);
        match checkpoint_err(load_params(&mut a, &path)) {
            CheckpointError::Truncated { offset, needed, available } => {
                assert_eq!((offset, needed, available), (12, 4, 12));
            }
            e => panic!("wrong variant: {e:?}"),
        }
        // a file cut mid-data also reports truncation
        let mut full = Vec::new();
        let mut b = net(1);
        let path2 = tmp("cut");
        save_params(&mut b, &path2).unwrap();
        full.extend_from_slice(&std::fs::read(&path2).unwrap());
        std::fs::write(&path2, &full[..full.len() - 5]).unwrap();
        assert!(matches!(
            checkpoint_err(load_params(&mut a, &path2)),
            CheckpointError::Truncated { .. }
        ));
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn absurd_rank_is_implausible() {
        let path = tmp("rank");
        let mut blob = Vec::new();
        blob.extend_from_slice(MAGIC);
        blob.extend_from_slice(&4u32.to_le_bytes()); // matches net(1)'s count
        blob.extend_from_slice(&9u32.to_le_bytes()); // rank 9 > MAX_RANK
        std::fs::write(&path, &blob).unwrap();
        let mut a = net(1);
        assert_eq!(
            checkpoint_err(load_params(&mut a, &path)),
            CheckpointError::ImplausibleRank { param: 0, rank: 9 }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn overflowing_dims_are_rejected_before_allocation() {
        // a hostile size field must not trigger a huge allocation (or an
        // arithmetic overflow panic under test profiles): 4 × u32::MAX dims
        let path = tmp("oversize");
        let mut blob = Vec::new();
        blob.extend_from_slice(MAGIC);
        blob.extend_from_slice(&4u32.to_le_bytes());
        blob.extend_from_slice(&4u32.to_le_bytes()); // rank 4
        for _ in 0..4 {
            blob.extend_from_slice(&u32::MAX.to_le_bytes());
        }
        std::fs::write(&path, &blob).unwrap();
        let mut a = net(1);
        match checkpoint_err(load_params(&mut a, &path)) {
            CheckpointError::OversizedTensor { param: 0, dims } => {
                assert_eq!(dims, vec![u32::MAX as usize; 4]);
            }
            e => panic!("wrong variant: {e:?}"),
        }
        // a size that multiplies fine but exceeds the file reports Truncated
        // without allocating the declared amount first
        let mut blob = Vec::new();
        blob.extend_from_slice(MAGIC);
        blob.extend_from_slice(&4u32.to_le_bytes());
        blob.extend_from_slice(&2u32.to_le_bytes()); // rank 2
        blob.extend_from_slice(&1_000_000u32.to_le_bytes());
        blob.extend_from_slice(&1_000u32.to_le_bytes()); // 4 GB declared
        std::fs::write(&path, &blob).unwrap();
        assert!(matches!(
            checkpoint_err(load_params(&mut a, &path)),
            CheckpointError::Truncated { .. }
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn wrong_count_is_param_count_mismatch() {
        let path = tmp("count");
        let mut blob = Vec::new();
        blob.extend_from_slice(MAGIC);
        blob.extend_from_slice(&7u32.to_le_bytes());
        std::fs::write(&path, &blob).unwrap();
        let mut a = net(1);
        assert_eq!(
            checkpoint_err(load_params(&mut a, &path)),
            CheckpointError::ParamCountMismatch { checkpoint: 7, network: 4 }
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let path = tmp("trailing");
        let mut a = net(1);
        save_params(&mut a, &path).unwrap();
        let mut blob = std::fs::read(&path).unwrap();
        blob.extend_from_slice(&[0xAB; 3]);
        std::fs::write(&path, &blob).unwrap();
        let before = params(&mut a);
        assert_eq!(
            checkpoint_err(load_params(&mut a, &path)),
            CheckpointError::TrailingBytes { extra: 3 }
        );
        assert_eq!(before, params(&mut a));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn checkpoint_error_display_and_conversion() {
        let e = CheckpointError::ShapeMismatch {
            param: 2,
            checkpoint: vec![3, 4],
            network: vec![4, 3],
        };
        assert!(e.to_string().contains("parameter 2"));
        let wrapped = SnnError::from(e.clone());
        assert!(matches!(&wrapped, SnnError::Checkpoint(inner) if *inner == e));
        assert!(wrapped.to_string().contains("checkpoint"));
        assert!(std::error::Error::source(&wrapped).is_some());
    }
}
