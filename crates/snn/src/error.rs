use crate::checkpoint::CheckpointError;
use dtsnn_tensor::TensorError;
use std::fmt;

/// Errors produced by SNN construction, training and inference.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SnnError {
    /// An underlying tensor operation failed (shape/geometry mismatch).
    Tensor(TensorError),
    /// A configuration value was outside its documented domain.
    InvalidConfig(String),
    /// Backward was called without a matching forward (empty cache).
    MissingForwardCache(&'static str),
    /// A label index exceeded the class count.
    LabelOutOfRange {
        /// Offending label.
        label: usize,
        /// Number of classes the model predicts.
        classes: usize,
    },
    /// The network received an input whose shape disagrees with its layers.
    BadInput(String),
    /// Saving or loading a checkpoint failed; the payload says exactly how.
    Checkpoint(CheckpointError),
}

impl fmt::Display for SnnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnnError::Tensor(e) => write!(f, "tensor operation failed: {e}"),
            SnnError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            SnnError::MissingForwardCache(layer) => {
                write!(f, "backward called on `{layer}` without a cached forward pass")
            }
            SnnError::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            SnnError::BadInput(msg) => write!(f, "bad network input: {msg}"),
            SnnError::Checkpoint(e) => write!(f, "checkpoint failure: {e}"),
        }
    }
}

impl std::error::Error for SnnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnnError::Tensor(e) => Some(e),
            SnnError::Checkpoint(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for SnnError {
    fn from(e: TensorError) -> Self {
        SnnError::Tensor(e)
    }
}

impl From<CheckpointError> for SnnError {
    fn from(e: CheckpointError) -> Self {
        SnnError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = SnnError::from(TensorError::InvalidArgument("x".into()));
        assert!(e.to_string().contains("tensor operation failed"));
        assert!(std::error::Error::source(&e).is_some());
        let e2 = SnnError::LabelOutOfRange { label: 10, classes: 10 };
        assert!(e2.to_string().contains("label 10"));
        assert!(std::error::Error::source(&e2).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SnnError>();
    }
}
