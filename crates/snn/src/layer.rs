//! The [`Layer`] trait: the contract every network component implements for
//! per-timestep forward passes and reverse-time backpropagation.

use crate::Result;
use dtsnn_tensor::{Tensor, Workspace};

/// Whether a pass updates training-only state (batch statistics, dropout
/// masks, backward caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Training: caches activations for backward, uses batch statistics.
    Train,
    /// Inference: no caches, running statistics, dropout disabled.
    Eval,
}

/// A learnable parameter: value, accumulated gradient and momentum buffer.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated over the current BPTT window.
    pub grad: Tensor,
    /// Momentum buffer owned by the optimizer.
    pub momentum: Tensor,
    /// Whether weight decay applies (disabled for norms/biases).
    pub decay: bool,
}

impl Param {
    /// Wraps a freshly initialized value with zeroed gradient/momentum.
    pub fn new(value: Tensor, decay: bool) -> Self {
        let grad = Tensor::zeros(value.dims());
        let momentum = Tensor::zeros(value.dims());
        Param { value, grad, momentum, decay }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.map_inplace(|_| 0.0);
    }
}

/// One component of a spiking network, processed once per timestep.
///
/// # BPTT contract
///
/// - `forward` is called once per timestep `t = 1..=T`; in [`Mode::Train`]
///   each call pushes an activation cache onto an internal stack.
/// - `backward` is called once per timestep in **reverse** order; each call
///   pops the matching cache and accumulates parameter gradients.
/// - `reset_state` clears membrane potentials **and** caches; call it before
///   every new input sequence.
///
/// `Send + Sync` is a supertrait bound so the data-parallel evaluation
/// workers in `dtsnn-core` can clone a shared prototype network onto scoped
/// threads. No layer uses interior mutability, so the bound is free.
pub trait Layer: Send + Sync {
    /// Processes one timestep of input.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape disagrees with the layer.
    fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor>;

    /// Processes one timestep of input, drawing scratch and output buffers
    /// from the workspace arena where the layer supports it.
    ///
    /// This is the zero-allocation Eval path: overriding layers must produce
    /// output **bitwise identical** to [`Layer::forward`] (the conformance
    /// golden traces pin this), and should delegate to `forward` in
    /// [`Mode::Train`], where backward caches make buffer reuse unsafe. The
    /// default simply delegates, so layers without an arena-backed kernel
    /// stay correct.
    ///
    /// # Errors
    ///
    /// Returns an error if the input shape disagrees with the layer.
    fn forward_ws(&mut self, input: &Tensor, mode: Mode, ws: &mut Workspace) -> Result<Tensor> {
        let _ = ws;
        self.forward(input, mode)
    }

    /// Backpropagates one timestep (reverse order), returning `∂L/∂input`.
    ///
    /// # Errors
    ///
    /// Returns [`crate::SnnError::MissingForwardCache`] when called more times
    /// than `forward`.
    fn backward(&mut self, grad_out: &Tensor) -> Result<Tensor>;

    /// Clears sequence state like [`Layer::reset_state`], parking any
    /// retired carried buffers (e.g. LIF membranes) in the workspace so the
    /// next sample's warm-up takes hit the freelist instead of allocating.
    /// Container layers must forward the call to their children. The default
    /// delegates to `reset_state`.
    fn reset_state_ws(&mut self, ws: &mut Workspace) {
        let _ = ws;
        self.reset_state();
    }

    /// Clears sequence state (membranes, caches) before a new sample.
    fn reset_state(&mut self);

    /// Visits every learnable parameter.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Human-readable layer kind for reports.
    fn kind(&self) -> &'static str;

    /// Spike density of the most recent output, if this layer emits spikes.
    ///
    /// Used by the IMC energy model: crossbar input activity is the spike
    /// density of the preceding LIF layer.
    fn last_spike_density(&self) -> Option<f32> {
        None
    }

    /// Per-axis-0-row spike density of the most recent output, if this layer
    /// emits spikes (aligned with [`Layer::last_spike_density`]: the batch
    /// mean of these rows over integer nonzero counts equals the scalar
    /// density bitwise).
    ///
    /// The batched dynamic-evaluation harness reads this to account spike
    /// activity per sample rather than per batch. Spiking layers must
    /// override it together with `last_spike_density`; the default covers
    /// non-spiking layers.
    fn last_spike_row_densities(&self) -> Option<&[f32]> {
        None
    }

    /// Restricts all carried batch state (e.g. LIF membrane potentials) to
    /// the given axis-0 rows, in order — the layer-level half of
    /// [`crate::Snn::compact_batch`], called between timesteps when the
    /// batched dynamic-evaluation harness retires exited samples.
    ///
    /// Only inference-time sequence state participates: training caches are
    /// out of scope (compaction is an [`Mode::Eval`] operation). Layers
    /// without per-row state keep the default no-op; container layers must
    /// forward the call to their children.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range row indices.
    fn select_batch_rows(&mut self, rows: &[usize]) -> Result<()> {
        let _ = rows;
        Ok(())
    }

    /// Workspace-backed variant of [`Layer::select_batch_rows`]: layers
    /// with per-row state gather the survivors into an arena buffer and
    /// park the retired one, so mid-window compaction allocates nothing
    /// once the loop is warmed (the serving engine compacts and re-admits
    /// rows every window, where the plain path's drop-and-reallocate would
    /// bleed buffers out of the arena). The resulting state must be bitwise
    /// identical to [`Layer::select_batch_rows`]. The default delegates;
    /// container layers must forward the call to their children.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range row indices.
    fn select_batch_rows_ws(&mut self, rows: &[usize], ws: &mut Workspace) -> Result<()> {
        let _ = ws;
        self.select_batch_rows(rows)
    }

    /// Appends `extra` fresh batch rows to all carried batch state — the
    /// layer-level half of [`crate::Snn::admit_batch_rows`], the row
    /// *insertion* dual of [`Layer::select_batch_rows`]. New rows start from
    /// the same state a freshly reset layer would give them (zero membrane):
    /// a zero row evolves `u = 0·τ + x` on its first timestep, which can
    /// differ from a fresh `None` membrane's `u = x` only in the sign of
    /// zero, a distinction the strict `u > V_th` spike comparison (and the
    /// smooth step, a function of `u − V_th`) cannot observe — so a spliced
    /// row's spikes, and everything downstream of them, are bitwise
    /// identical to running that row alone. Existing rows are untouched.
    ///
    /// Layers without per-row state keep the default no-op; container layers
    /// must forward the call to their children. Like compaction this is an
    /// [`Mode::Eval`] operation: training caches are out of scope.
    ///
    /// # Errors
    ///
    /// Returns an error if the carried state has no batch axis.
    fn pad_batch_rows(&mut self, extra: usize, ws: &mut Workspace) -> Result<()> {
        let _ = (extra, ws);
        Ok(())
    }

    /// Freezes any input-dependent normalization statistics so repeated
    /// forward passes become pure functions of the parameters (the
    /// conformance gradient checker needs this: batch-norm EMA updates
    /// otherwise make the loss depend on evaluation history). Default is a
    /// no-op; container layers must forward the call to their children.
    fn freeze_stats(&mut self) {}

    /// Deep-copies the layer behind a fresh box (lets [`crate::Snn`]
    /// implement `Clone` despite holding trait objects — e.g. to perturb
    /// several noisy replicas of one trained network).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Name of the kernel backend the most recent Eval forward dispatched
    /// to (`"dense"`, `"csr"`, `"bitset"`, `"quantized"`), if this layer
    /// runs a dispatched matmul/conv kernel. Default covers layers with no
    /// backend seam.
    fn last_backend(&self) -> Option<&'static str> {
        None
    }

    /// Appends `(qualified_name, backend)` pairs for every dispatched
    /// kernel inside this layer to `out`. The default reports
    /// [`Layer::last_backend`] under the given name; container layers
    /// override it to recurse with qualified child names.
    fn backend_choices(&self, name: &str, out: &mut Vec<(String, &'static str)>) {
        if let Some(b) = self.last_backend() {
            out.push((name.to_string(), b));
        }
    }

    /// Opts this layer's weights into the quantized Eval backend on the
    /// signed `bits` grid (the IMC `weight_bits` deployment grid). The
    /// stored f32 weights are untouched — the on-grid codes are a cached
    /// view, rebuilt lazily whenever the weights change. Layers without
    /// weight kernels ignore the call; container layers must forward it.
    fn quantize_weights(&mut self, bits: u32) {
        let _ = bits;
    }
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_zero_grad() {
        let mut p = Param::new(Tensor::ones(&[3]), true);
        p.grad = Tensor::ones(&[3]);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.value.sum(), 3.0);
    }
}
