//! Property-based tests of the tensor algebra that everything above relies
//! on: linearity, adjointness, involution, conservation.

use dtsnn_tensor::{
    avg_pool2d, avg_pool2d_backward, col2im, im2col, softmax_rows, Conv2dSpec, PoolSpec, Tensor,
    TensorRng,
};
use proptest::prelude::*;

/// Random tensor of the given shape, driven by a proptest seed.
fn tensor_from_seed(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = TensorRng::seed_from(seed);
    Tensor::randn(dims, 0.0, 1.0, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_is_linear_in_lhs(seed in 0u64..1000, alpha in -3.0f32..3.0) {
        let a = tensor_from_seed(&[3, 4], seed);
        let b = tensor_from_seed(&[4, 2], seed ^ 1);
        // (αA)B == α(AB)
        let lhs = a.scale(alpha).matmul(&b).unwrap();
        let rhs = a.matmul(&b).unwrap().scale(alpha);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_distributes_over_addition(seed in 0u64..1000) {
        let a = tensor_from_seed(&[2, 5], seed);
        let b = tensor_from_seed(&[2, 5], seed ^ 2);
        let c = tensor_from_seed(&[5, 3], seed ^ 3);
        let lhs = a.add(&b).unwrap().matmul(&c).unwrap();
        let rhs = a.matmul(&c).unwrap().add(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_is_involutive(rows in 1usize..8, cols in 1usize..8, seed in 0u64..1000) {
        let a = tensor_from_seed(&[rows, cols], seed);
        let back = a.transpose2d().unwrap().transpose2d().unwrap();
        prop_assert_eq!(a, back);
    }

    #[test]
    fn matmul_transpose_identity(seed in 0u64..1000) {
        // (AB)ᵀ == Bᵀ Aᵀ
        let a = tensor_from_seed(&[3, 4], seed);
        let b = tensor_from_seed(&[4, 2], seed ^ 5);
        let lhs = a.matmul(&b).unwrap().transpose2d().unwrap();
        let rhs = b
            .transpose2d()
            .unwrap()
            .matmul(&a.transpose2d().unwrap())
            .unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(
        channels in 1usize..3,
        size in 4usize..8,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        // <im2col(x), y> == <x, col2im(y)> for every geometry
        let spec = Conv2dSpec::new(channels, 1, 3, stride, pad).unwrap();
        if spec.output_hw(size, size).is_err() {
            return Ok(());
        }
        let x = tensor_from_seed(&[1, channels, size, size], seed);
        let cols = im2col(&x, &spec).unwrap();
        let y = tensor_from_seed(cols.dims(), seed ^ 7);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &spec, 1, size, size).unwrap();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn pooling_preserves_mean(seed in 0u64..1000) {
        // 2×2 stride-2 average pooling preserves the global mean exactly
        let x = tensor_from_seed(&[1, 2, 4, 4], seed);
        let y = avg_pool2d(&x, &PoolSpec::new(2, 2).unwrap()).unwrap();
        prop_assert!((x.mean() - y.mean()).abs() < 1e-4);
    }

    #[test]
    fn pool_backward_conserves_gradient(seed in 0u64..1000) {
        let g = tensor_from_seed(&[1, 2, 2, 2], seed);
        let gx = avg_pool2d_backward(&g, &PoolSpec::new(2, 2).unwrap(), (4, 4)).unwrap();
        prop_assert!((g.sum() - gx.sum()).abs() < 1e-3);
    }

    #[test]
    fn softmax_invariant_to_logit_shift(seed in 0u64..1000, shift in -20.0f32..20.0) {
        let x = tensor_from_seed(&[2, 6], seed);
        let p1 = softmax_rows(&x).unwrap();
        let p2 = softmax_rows(&x.add_scalar(shift)).unwrap();
        for (a, b) in p1.data().iter().zip(p2.data()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn concat_then_rows_roundtrip(n1 in 1usize..4, n2 in 1usize..4, seed in 0u64..1000) {
        let a = tensor_from_seed(&[n1, 3], seed);
        let b = tensor_from_seed(&[n2, 3], seed ^ 11);
        let c = Tensor::concat_axis0(&[&a, &b]).unwrap();
        prop_assert_eq!(c.dims(), &[n1 + n2, 3]);
        for i in 0..n1 {
            prop_assert_eq!(c.row(i).unwrap(), a.row(i).unwrap());
        }
        for i in 0..n2 {
            prop_assert_eq!(c.row(n1 + i).unwrap(), b.row(i).unwrap());
        }
    }

    #[test]
    fn axpy_matches_scale_add(seed in 0u64..1000, alpha in -2.0f32..2.0) {
        let a = tensor_from_seed(&[7], seed);
        let b = tensor_from_seed(&[7], seed ^ 13);
        let mut fast = a.clone();
        fast.axpy(alpha, &b).unwrap();
        let slow = a.add(&b.scale(alpha)).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }
}
