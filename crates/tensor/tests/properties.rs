//! Property-based tests of the tensor algebra that everything above relies
//! on: linearity, adjointness, involution, conservation.
//!
//! Cases are generated from a seeded [`TensorRng`] (48 cases per property,
//! like the previous proptest configuration) so failures are reproducible by
//! seed alone and the suite needs no external crates.

use dtsnn_tensor::{
    avg_pool2d, avg_pool2d_backward, col2im, im2col, softmax_rows, Conv2dSpec, PoolSpec, Tensor,
    TensorRng,
};

const CASES: u64 = 48;

/// Random tensor of the given shape, pinned to a case seed.
fn tensor_from_seed(dims: &[usize], seed: u64) -> Tensor {
    let mut rng = TensorRng::seed_from(seed);
    Tensor::randn(dims, 0.0, 1.0, &mut rng)
}

/// Per-case parameter generator (dims, scalars) independent of data seeds.
fn case_rng(case: u64) -> TensorRng {
    TensorRng::seed_from(0xC0FFEE ^ case.wrapping_mul(0x9E37_79B9))
}

#[test]
fn matmul_is_linear_in_lhs() {
    for case in 0..CASES {
        let alpha = case_rng(case).uniform(-3.0, 3.0);
        let a = tensor_from_seed(&[3, 4], case);
        let b = tensor_from_seed(&[4, 2], case ^ 1);
        // (αA)B == α(AB)
        let lhs = a.scale(alpha).matmul(&b).unwrap();
        let rhs = a.matmul(&b).unwrap().scale(alpha);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-3, "case {case}: {x} vs {y}");
        }
    }
}

#[test]
fn matmul_distributes_over_addition() {
    for case in 0..CASES {
        let a = tensor_from_seed(&[2, 5], case);
        let b = tensor_from_seed(&[2, 5], case ^ 2);
        let c = tensor_from_seed(&[5, 3], case ^ 3);
        let lhs = a.add(&b).unwrap().matmul(&c).unwrap();
        let rhs = a.matmul(&c).unwrap().add(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-3, "case {case}");
        }
    }
}

#[test]
fn transpose_is_involutive() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let rows = 1 + params.below(7);
        let cols = 1 + params.below(7);
        let a = tensor_from_seed(&[rows, cols], case);
        let back = a.transpose2d().unwrap().transpose2d().unwrap();
        assert_eq!(a, back, "case {case}");
    }
}

#[test]
fn matmul_transpose_identity() {
    for case in 0..CASES {
        // (AB)ᵀ == Bᵀ Aᵀ
        let a = tensor_from_seed(&[3, 4], case);
        let b = tensor_from_seed(&[4, 2], case ^ 5);
        let lhs = a.matmul(&b).unwrap().transpose2d().unwrap();
        let rhs = b.transpose2d().unwrap().matmul(&a.transpose2d().unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-3, "case {case}");
        }
    }
}

#[test]
fn im2col_col2im_adjoint() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let channels = 1 + params.below(2);
        let size = 4 + params.below(4);
        let stride = 1 + params.below(2);
        let pad = params.below(2);
        // <im2col(x), y> == <x, col2im(y)> for every geometry
        let spec = Conv2dSpec::new(channels, 1, 3, stride, pad).unwrap();
        if spec.output_hw(size, size).is_err() {
            continue;
        }
        let x = tensor_from_seed(&[1, channels, size, size], case);
        let cols = im2col(&x, &spec).unwrap();
        let y = tensor_from_seed(cols.dims(), case ^ 7);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &spec, 1, size, size).unwrap();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-2 * lhs.abs().max(1.0), "case {case}: {lhs} vs {rhs}");
    }
}

#[test]
fn pooling_preserves_mean() {
    for case in 0..CASES {
        // 2×2 stride-2 average pooling preserves the global mean exactly
        let x = tensor_from_seed(&[1, 2, 4, 4], case);
        let y = avg_pool2d(&x, &PoolSpec::new(2, 2).unwrap()).unwrap();
        assert!((x.mean() - y.mean()).abs() < 1e-4, "case {case}");
    }
}

#[test]
fn pool_backward_conserves_gradient() {
    for case in 0..CASES {
        let g = tensor_from_seed(&[1, 2, 2, 2], case);
        let gx = avg_pool2d_backward(&g, &PoolSpec::new(2, 2).unwrap(), (4, 4)).unwrap();
        assert!((g.sum() - gx.sum()).abs() < 1e-3, "case {case}");
    }
}

#[test]
fn softmax_invariant_to_logit_shift() {
    for case in 0..CASES {
        let shift = case_rng(case).uniform(-20.0, 20.0);
        let x = tensor_from_seed(&[2, 6], case);
        let p1 = softmax_rows(&x).unwrap();
        let p2 = softmax_rows(&x.add_scalar(shift)).unwrap();
        for (a, b) in p1.data().iter().zip(p2.data()) {
            assert!((a - b).abs() < 1e-4, "case {case}");
        }
    }
}

#[test]
fn concat_then_rows_roundtrip() {
    for case in 0..CASES {
        let mut params = case_rng(case);
        let n1 = 1 + params.below(3);
        let n2 = 1 + params.below(3);
        let a = tensor_from_seed(&[n1, 3], case);
        let b = tensor_from_seed(&[n2, 3], case ^ 11);
        let c = Tensor::concat_axis0(&[&a, &b]).unwrap();
        assert_eq!(c.dims(), &[n1 + n2, 3]);
        for i in 0..n1 {
            assert_eq!(c.row(i).unwrap(), a.row(i).unwrap(), "case {case}");
        }
        for i in 0..n2 {
            assert_eq!(c.row(n1 + i).unwrap(), b.row(i).unwrap(), "case {case}");
        }
    }
}

#[test]
fn axpy_matches_scale_add() {
    for case in 0..CASES {
        let alpha = case_rng(case).uniform(-2.0, 2.0);
        let a = tensor_from_seed(&[7], case);
        let b = tensor_from_seed(&[7], case ^ 13);
        let mut fast = a.clone();
        fast.axpy(alpha, &b).unwrap();
        let slow = a.add(&b.scale(alpha)).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5, "case {case}");
        }
    }
}
