use crate::{AlignedVec, Result, Shape, TensorError, TensorRng};

/// An owned, contiguous, row-major `f32` tensor.
///
/// [`Tensor`] is the single data container used by every crate in the
/// workspace: images are `NCHW`, weight matrices are `[rows, cols]`, spike
/// trains are `NCHW` per timestep. The buffer is an [`AlignedVec`], so the
/// data always starts on a 64-byte (cache-line) boundary for the SIMD
/// kernel tier.
///
/// # Example
///
/// ```
/// use dtsnn_tensor::Tensor;
///
/// # fn main() -> Result<(), dtsnn_tensor::TensorError> {
/// let x = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3])?;
/// let y = x.map(f32::abs);
/// assert_eq!(y.data(), &[1.0, 2.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: AlignedVec,
}

impl Tensor {
    // ---------------------------------------------------------------- ctors

    /// Creates a tensor from raw data and a shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` disagrees
    /// with the shape's element count.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        Tensor::from_aligned(AlignedVec::from(data), dims)
    }

    /// Creates a tensor from an already-aligned buffer and a shape — the
    /// move-not-copy path the [`crate::Workspace`] arena uses to turn a
    /// recycled buffer back into a tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` disagrees
    /// with the shape's element count.
    pub fn from_aligned(data: AlignedVec, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: data.len() });
        }
        Ok(Tensor { shape, data })
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.len();
        Tensor { shape, data: AlignedVec::zeroed(n) }
    }

    /// All-ones tensor of the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Constant-filled tensor.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.len();
        let mut data = AlignedVec::with_capacity(n);
        data.resize(n, value);
        Tensor { shape, data }
    }

    /// Square identity matrix of extent `n`.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// I.i.d. normal-sampled tensor.
    pub fn randn(dims: &[usize], mean: f32, std: f32, rng: &mut TensorRng) -> Self {
        let mut t = Tensor::zeros(dims);
        rng.fill_normal(&mut t.data, mean, std);
        t
    }

    /// I.i.d. uniform-sampled tensor in `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut TensorRng) -> Self {
        let mut t = Tensor::zeros(dims);
        rng.fill_uniform(&mut t.data, lo, hi);
        t
    }

    /// Kaiming/He normal initialization for a weight tensor whose fan-in is
    /// `fan_in` (used for conv and linear weights feeding spiking neurons).
    pub fn kaiming(dims: &[usize], fan_in: usize, rng: &mut TensorRng) -> Self {
        let std = (2.0 / fan_in.max(1) as f32).sqrt();
        Tensor::randn(dims, 0.0, std, rng)
    }

    // ------------------------------------------------------------- accessors

    /// Shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Extents as a slice, e.g. `[n, c, h, w]`.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Read-only view of the underlying row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer as a plain `Vec` (copies;
    /// prefer [`Tensor::into_aligned`] to keep the allocation).
    pub fn into_vec(self) -> Vec<f32> {
        self.data.to_vec()
    }

    /// Consumes the tensor, returning its aligned buffer without copying —
    /// the counterpart of [`Tensor::from_aligned`] for arena recycling.
    pub fn into_aligned(self) -> AlignedVec {
        self.data
    }

    /// Element at a multi-index.
    ///
    /// # Errors
    ///
    /// Propagates index errors from [`Shape::offset`].
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-index.
    ///
    /// # Errors
    ///
    /// Propagates index errors from [`Shape::offset`].
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    // --------------------------------------------------------------- shape ops

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if element counts differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.len() != self.len() {
            return Err(TensorError::LengthMismatch { expected: shape.len(), actual: self.len() });
        }
        Ok(Tensor { shape, data: self.data.clone() })
    }

    /// Transposes a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn transpose2d(&self) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape.rank() });
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        Ok(out)
    }

    /// Extracts row `i` of a rank-2 tensor as a rank-1 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::InvalidArgument`] for out-of-range rows.
    pub fn row(&self, i: usize) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape.rank() });
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        if i >= r {
            return Err(TensorError::InvalidArgument(format!("row {i} out of range ({r} rows)")));
        }
        Ok(Tensor {
            shape: Shape::new(&[c]),
            data: AlignedVec::from_slice(&self.data[i * c..(i + 1) * c]),
        })
    }

    /// Concatenates rank-equal tensors along axis 0.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for an empty list and
    /// [`TensorError::ShapeMismatch`] when trailing dims differ.
    pub fn concat_axis0(parts: &[&Tensor]) -> Result<Tensor> {
        let first = parts
            .first()
            .ok_or_else(|| TensorError::InvalidArgument("concat of empty list".into()))?;
        let tail = &first.dims()[1..];
        let mut rows = 0;
        for p in parts {
            if &p.dims()[1..] != tail {
                return Err(TensorError::ShapeMismatch {
                    expected: first.dims().to_vec(),
                    actual: p.dims().to_vec(),
                });
            }
            rows += p.dims()[0];
        }
        let mut dims = vec![rows];
        dims.extend_from_slice(tail);
        let mut data = AlignedVec::with_capacity(Shape::new(&dims).len());
        for p in parts {
            data.extend_from_slice(p.data());
        }
        Tensor::from_aligned(data, &dims)
    }

    /// Gathers the given axis-0 rows into a new tensor (`out[k] = self[rows[k]]`).
    ///
    /// Indices may repeat and appear in any order; the output shape is
    /// `[rows.len(), tail…]`. This is the batch-compaction primitive: the
    /// batched dynamic-evaluation harness uses it to drop exited samples from
    /// input frames and carried layer state between timesteps.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for rank-0 tensors and
    /// [`TensorError::InvalidArgument`] for an out-of-range index.
    pub fn select_rows(&self, rows: &[usize]) -> Result<Tensor> {
        if self.shape.rank() == 0 {
            return Err(TensorError::RankMismatch { expected: 1, actual: 0 });
        }
        let n = self.shape.dim(0);
        let stride: usize = self.dims()[1..].iter().product();
        let mut data = AlignedVec::with_capacity(rows.len() * stride);
        for &r in rows {
            if r >= n {
                return Err(TensorError::InvalidArgument(format!(
                    "select_rows index {r} out of range ({n} rows)"
                )));
            }
            data.extend_from_slice(&self.data[r * stride..(r + 1) * stride]);
        }
        let mut dims = vec![rows.len()];
        dims.extend_from_slice(&self.dims()[1..]);
        Tensor::from_aligned(data, &dims)
    }

    // ---------------------------------------------------------- elementwise

    /// Applies `f` to every element, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data.iter_mut() {
            *v = f(*v);
        }
    }

    /// Elementwise combination of two same-shape tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        self.shape.expect_eq(&other.shape)?;
        Ok(Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        })
    }

    /// Elementwise sum.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a + b)
    }

    /// Elementwise difference.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a * b)
    }

    /// In-place `self += alpha * other` (the hot path of SGD updates).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.shape.expect_eq(&other.shape)?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by `s`.
    pub fn scale(&self, s: f32) -> Tensor {
        self.map(|x| x * s)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Tensor {
        self.map(|x| x + s)
    }

    // ----------------------------------------------------------- reductions

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (`-inf` for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (`+inf` for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Fraction of nonzero elements — spike density for binary spike tensors.
    pub fn density(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().filter(|&&x| x != 0.0).count() as f32 / self.data.len() as f32
    }

    /// One-pass density **and** binarity measurement for backend dispatch:
    /// `(density, binary)` where `density` equals [`Tensor::density`]
    /// (same integer count over the same length) and `binary` is whether
    /// every nonzero element is exactly `1.0` (`-0.0` counts as zero; an
    /// empty tensor is trivially binary).
    pub fn spike_stats(&self) -> (f32, bool) {
        if self.data.is_empty() {
            return (0.0, true);
        }
        let mut nnz = 0usize;
        let mut binary = true;
        for &v in &self.data {
            if v != 0.0 {
                nnz += 1;
                binary &= v == 1.0;
            }
        }
        (nnz as f32 / self.data.len() as f32, binary)
    }

    /// Fraction of nonzero elements in each axis-0 row.
    ///
    /// Entry `k` is bitwise identical to `self.select_rows(&[k]).density()`,
    /// and for a rank-≥1 tensor the whole-tensor [`Tensor::density`] equals
    /// `total_count / len` over the same integer counts — the property the
    /// batched evaluation harness relies on to account spike activity per
    /// sample. Returns one entry per row (empty for rank-0 tensors).
    pub fn density_rows(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.density_rows_into(&mut out);
        out
    }

    /// [`Tensor::density_rows`] into a caller-owned buffer (cleared, then
    /// filled) — lets the timestep loop refresh per-row densities without a
    /// fresh allocation each step.
    pub fn density_rows_into(&self, out: &mut Vec<f32>) {
        out.clear();
        if self.shape.rank() == 0 || self.data.is_empty() {
            return;
        }
        let n = self.shape.dim(0);
        let stride: usize = self.dims()[1..].iter().product();
        if stride == 0 {
            out.resize(n, 0.0);
            return;
        }
        out.extend(
            self.data
                .chunks(stride)
                .map(|row| row.iter().filter(|&&x| x != 0.0).count() as f32 / stride as f32),
        );
    }

    /// Index of the maximum element of a rank-1 tensor (ties → first).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-vectors and
    /// [`TensorError::InvalidArgument`] for empty vectors.
    pub fn argmax(&self) -> Result<usize> {
        if self.shape.rank() != 1 {
            return Err(TensorError::RankMismatch { expected: 1, actual: self.shape.rank() });
        }
        if self.data.is_empty() {
            return Err(TensorError::InvalidArgument("argmax of empty vector".into()));
        }
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Ok(best)
    }

    /// Row-wise argmax of a rank-2 tensor (ties → first).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape.rank() });
        }
        let (r, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Vec::with_capacity(r);
        for i in 0..r {
            let row = &self.data[i * c..(i + 1) * c];
            let mut best = 0;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Squared L2 norm of the buffer.
    pub fn norm_sq(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{} n={}", self.shape, self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn eye_has_unit_diagonal() {
        let e = Tensor::eye(3);
        assert_eq!(e.at(&[0, 0]).unwrap(), 1.0);
        assert_eq!(e.at(&[1, 2]).unwrap(), 0.0);
        assert_eq!(e.sum(), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        let r = t.reshape(&[4]).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(&[5]).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let t = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]).unwrap();
        let tt = t.transpose2d().unwrap().transpose2d().unwrap();
        assert_eq!(t, tt);
        assert_eq!(t.transpose2d().unwrap().at(&[2, 1]).unwrap(), t.at(&[1, 2]).unwrap());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 6.0]);
        assert_eq!(a.sub(&b).unwrap().data(), &[-2.0, -2.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 8.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
        let c = Tensor::zeros(&[3]);
        assert!(a.add(&c).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::ones(&[3]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.data(), &[0.5, 0.0, -0.5]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-1.0, 0.0, 3.0, 2.0], &[4]).unwrap();
        assert_eq!(t.sum(), 4.0);
        assert_eq!(t.mean(), 1.0);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -1.0);
        assert_eq!(t.density(), 0.75);
        assert_eq!(t.argmax().unwrap(), 2);
    }

    #[test]
    fn argmax_rows_ties_pick_first() {
        let t = Tensor::from_vec(vec![1.0, 1.0, 0.0, 0.0, 2.0, 2.0], &[2, 3]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![0, 1]);
    }

    #[test]
    fn concat_axis0_stacks_batches() {
        let a = Tensor::ones(&[2, 3]);
        let b = Tensor::zeros(&[1, 3]);
        let c = Tensor::concat_axis0(&[&a, &b]).unwrap();
        assert_eq!(c.dims(), &[3, 3]);
        assert_eq!(c.sum(), 6.0);
        let bad = Tensor::zeros(&[1, 4]);
        assert!(Tensor::concat_axis0(&[&a, &bad]).is_err());
    }

    #[test]
    fn select_rows_gathers_in_index_order() {
        let t = Tensor::from_vec((0..12).map(|x| x as f32).collect(), &[3, 2, 2]).unwrap();
        let g = t.select_rows(&[2, 0]).unwrap();
        assert_eq!(g.dims(), &[2, 2, 2]);
        assert_eq!(g.data(), &[8.0, 9.0, 10.0, 11.0, 0.0, 1.0, 2.0, 3.0]);
        // repeats are allowed; the empty gather yields an empty batch
        assert_eq!(
            t.select_rows(&[1, 1]).unwrap().data(),
            &[4.0, 5.0, 6.0, 7.0, 4.0, 5.0, 6.0, 7.0]
        );
        assert_eq!(t.select_rows(&[]).unwrap().dims(), &[0, 2, 2]);
        assert!(t.select_rows(&[3]).is_err());
    }

    #[test]
    fn density_rows_matches_per_row_density() {
        let t = Tensor::from_vec(vec![1.0, 0.0, 0.0, 0.0, 0.5, 2.0], &[3, 2]).unwrap();
        let rows = t.density_rows();
        assert_eq!(rows, vec![0.5, 0.0, 1.0]);
        for (k, &d) in rows.iter().enumerate() {
            assert_eq!(d, t.select_rows(&[k]).unwrap().density());
        }
        // whole-tensor density is the count-weighted mean of the row counts
        assert_eq!(t.density(), 3.0 / 6.0);
    }

    #[test]
    fn row_extraction() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
        assert_eq!(t.row(1).unwrap().data(), &[3.0, 4.0]);
        assert!(t.row(2).is_err());
    }

    #[test]
    fn kaiming_scale_tracks_fan_in() {
        let mut rng = TensorRng::seed_from(0);
        let w = Tensor::kaiming(&[1000], 50, &mut rng);
        let std = (w.norm_sq() / 1000.0).sqrt();
        let expect = (2.0f32 / 50.0).sqrt();
        assert!((std - expect).abs() / expect < 0.15, "std={std} expect={expect}");
    }
}
