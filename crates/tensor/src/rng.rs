use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random number source used for every stochastic operation in
/// the workspace (weight init, dataset synthesis, device-variation noise).
///
/// Wrapping [`StdRng`] behind a newtype keeps the seeding policy in one place
/// and lets higher crates split reproducible sub-streams per component.
///
/// # Example
///
/// ```
/// use dtsnn_tensor::TensorRng;
///
/// let mut a = TensorRng::seed_from(42);
/// let mut b = TensorRng::seed_from(42);
/// assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    inner: StdRng,
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        TensorRng { inner: StdRng::seed_from_u64(seed) }
    }

    /// Derives an independent child stream; deterministic in `(self, tag)`.
    ///
    /// Different `tag` values give decorrelated streams, so components can
    /// draw noise without perturbing each other's sequences.
    pub fn fork(&mut self, tag: u64) -> Self {
        let base: u64 = self.inner.gen();
        TensorRng::seed_from(base ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Standard normal sample scaled to `mean + std * z` via Box–Muller.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        // Box–Muller keeps us off external distribution crates.
        let u1: f32 = self.inner.gen_range(f32::EPSILON..1.0);
        let u2: f32 = self.inner.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        mean + std * z
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f32) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.inner.gen::<f32>() < p
    }

    /// Fills `out` with i.i.d. normal samples.
    pub fn fill_normal(&mut self, out: &mut [f32], mean: f32, std: f32) {
        for v in out.iter_mut() {
            *v = self.normal(mean, std);
        }
    }

    /// Fills `out` with i.i.d. uniform samples in `[lo, hi)`.
    pub fn fill_uniform(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out.iter_mut() {
            *v = self.uniform(lo, hi);
        }
    }

    /// Fisher–Yates shuffle of `indices`.
    pub fn shuffle(&mut self, indices: &mut [usize]) {
        for i in (1..indices.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            indices.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = TensorRng::seed_from(7);
        let mut b = TensorRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn forked_streams_decorrelate() {
        let mut root = TensorRng::seed_from(7);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let xs: Vec<f32> = (0..16).map(|_| a.uniform(0.0, 1.0)).collect();
        let ys: Vec<f32> = (0..16).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = TensorRng::seed_from(3);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal(2.0, 0.5)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.02, "mean={mean}");
        assert!((var - 0.25).abs() < 0.02, "var={var}");
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = TensorRng::seed_from(11);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f32 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = TensorRng::seed_from(5);
        let mut idx: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut idx);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(idx, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TensorRng::seed_from(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
