//! Deterministic random number source for the whole workspace.
//!
//! The generator is a self-contained xoshiro256++ (Blackman & Vigna) seeded
//! through SplitMix64 — no external crates, so the workspace builds offline
//! and the exact bit stream is pinned by this file alone.

/// Deterministic random number source used for every stochastic operation in
/// the workspace (weight init, dataset synthesis, device-variation noise).
///
/// Keeping the seeding policy in one newtype lets higher crates split
/// reproducible sub-streams per component.
///
/// # Example
///
/// ```
/// use dtsnn_tensor::TensorRng;
///
/// let mut a = TensorRng::seed_from(42);
/// let mut b = TensorRng::seed_from(42);
/// assert_eq!(a.normal(0.0, 1.0), b.normal(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct TensorRng {
    state: [u64; 4],
}

/// SplitMix64 step: expands a 64-bit seed into well-mixed words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TensorRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// Seeding goes through SplitMix64 so that structured seeds (0, 1, small
    /// integers, bit masks) still produce well-mixed state. The all-zero
    /// xoshiro state is a fixed point that would emit zeros forever; SplitMix
    /// cannot reach it from any seed by construction, but the guard below
    /// pins that invariant locally instead of relying on it at a distance.
    pub fn seed_from(seed: u64) -> Self {
        let mut s = seed;
        let mut state = [
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
            splitmix64(&mut s),
        ];
        if state == [0, 0, 0, 0] {
            state = [
                0x9E37_79B9_7F4A_7C15,
                0xBF58_476D_1CE4_E5B9,
                0x94D0_49BB_1331_11EB,
                0x2545_F491_4F6C_DD1D,
            ];
        }
        TensorRng { state }
    }

    /// Next raw 64-bit word (xoshiro256++).
    fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut n2 = s2 ^ s0;
        let mut n3 = s3 ^ s1;
        let n1 = s1 ^ n2;
        let n0 = s0 ^ n3;
        n2 ^= t;
        n3 = n3.rotate_left(45);
        self.state = [n0, n1, n2, n3];
        result
    }

    /// Uniform sample in `[0, 1)` with 24 bits of mantissa entropy.
    fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// Derives an independent child stream; deterministic in `(self, tag)`.
    ///
    /// Different `tag` values give decorrelated streams, so components can
    /// draw noise without perturbing each other's sequences.
    pub fn fork(&mut self, tag: u64) -> Self {
        let base = self.next_u64();
        TensorRng::seed_from(base ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.unit_f32()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        // Lemire's multiply-shift; bias is at most n / 2^64 — negligible for
        // every n this workspace uses.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Standard normal sample scaled to `mean + std * z` via Box–Muller.
    pub fn normal(&mut self, mean: f32, std: f32) -> f32 {
        // Box–Muller keeps us off external distribution crates.
        let u1 = self.unit_f32().max(f32::EPSILON);
        let u2 = self.unit_f32();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
        mean + std * z
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f32) -> bool {
        let p = p.clamp(0.0, 1.0);
        self.unit_f32() < p
    }

    /// Fills `out` with i.i.d. normal samples.
    pub fn fill_normal(&mut self, out: &mut [f32], mean: f32, std: f32) {
        for v in out.iter_mut() {
            *v = self.normal(mean, std);
        }
    }

    /// Fills `out` with i.i.d. uniform samples in `[lo, hi)`.
    pub fn fill_uniform(&mut self, out: &mut [f32], lo: f32, hi: f32) {
        for v in out.iter_mut() {
            *v = self.uniform(lo, hi);
        }
    }

    /// Fisher–Yates shuffle of `indices`.
    pub fn shuffle(&mut self, indices: &mut [usize]) {
        for i in (1..indices.len()).rev() {
            let j = self.below(i + 1);
            indices.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = TensorRng::seed_from(7);
        let mut b = TensorRng::seed_from(7);
        for _ in 0..32 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn zero_seed_stream_is_not_degenerate() {
        // seed 0 must behave like any other seed: nonzero internal state,
        // no all-zero output stream, and decorrelated from neighboring seeds
        let mut zero = TensorRng::seed_from(0);
        assert_ne!(zero.state, [0, 0, 0, 0]);
        let words: Vec<u64> = (0..64).map(|_| zero.next_u64()).collect();
        assert!(words.iter().any(|&w| w != 0), "all-zero stream from seed 0");
        let distinct: std::collections::HashSet<u64> = words.iter().copied().collect();
        assert!(distinct.len() > 60, "seed-0 stream repeats: {} distinct", distinct.len());
        let mut one = TensorRng::seed_from(1);
        let other: Vec<u64> = (0..64).map(|_| one.next_u64()).collect();
        assert_ne!(words, other);
        // uniform draws stay well-spread, not collapsed to a constant
        let mut zero = TensorRng::seed_from(0);
        let xs: Vec<f32> = (0..1000).map(|_| zero.uniform(0.0, 1.0)).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        assert!((mean - 0.5).abs() < 0.05, "seed-0 uniform mean {mean}");
    }

    #[test]
    fn forked_streams_decorrelate() {
        let mut root = TensorRng::seed_from(7);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let xs: Vec<f32> = (0..16).map(|_| a.uniform(0.0, 1.0)).collect();
        let ys: Vec<f32> = (0..16).map(|_| b.uniform(0.0, 1.0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = TensorRng::seed_from(3);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal(2.0, 0.5)).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / n as f32;
        assert!((mean - 2.0).abs() < 0.02, "mean={mean}");
        assert!((var - 0.25).abs() < 0.02, "var={var}");
    }

    #[test]
    fn uniform_stays_in_range_and_covers_it() {
        let mut rng = TensorRng::seed_from(17);
        let mut lo_seen = 1.0f32;
        let mut hi_seen = 0.0f32;
        for _ in 0..10_000 {
            let v = rng.uniform(0.0, 1.0);
            assert!((0.0..1.0).contains(&v));
            lo_seen = lo_seen.min(v);
            hi_seen = hi_seen.max(v);
        }
        assert!(lo_seen < 0.01 && hi_seen > 0.99);
    }

    #[test]
    fn bernoulli_rate() {
        let mut rng = TensorRng::seed_from(11);
        let hits = (0..10_000).filter(|_| rng.bernoulli(0.3)).count();
        assert!((hits as f32 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = TensorRng::seed_from(5);
        let mut idx: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut idx);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(idx, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn below_stays_in_range() {
        let mut rng = TensorRng::seed_from(9);
        for _ in 0..1000 {
            assert!(rng.below(7) < 7);
        }
    }
}
