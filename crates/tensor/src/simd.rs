//! Runtime-dispatched SIMD kernel tier (AVX2 → SSE2 → scalar).
//!
//! Every kernel family in this crate keeps one discipline: **each output
//! element accumulates its terms in exactly the serial order**, so results
//! are bitwise identical across kernel families and thread counts. The
//! vector code here preserves that discipline by vectorizing **across the
//! output-column (`j`) dimension**: each SIMD lane owns one independent
//! output accumulator, so no lane ever reorders another element's terms,
//! there is no horizontal float reduction, and every term is an explicit
//! multiply followed by an explicit add — **never an FMA** (scalar Rust
//! emits separate `mulss`/`addss`; a fused contraction would change the
//! rounding and break every golden trace).
//!
//! # Dispatch ladder
//!
//! The active [`SimdLevel`] resolves, in priority order, from:
//!
//! 1. a process-wide override installed with [`set_level`] / [`with_level`]
//!    (tests and benches pin the tier to compare),
//! 2. the `DTSNN_SIMD` environment variable
//!    (`auto|off|scalar|sse2|avx2`, read once; malformed values warn once
//!    and fall back to `auto`),
//! 3. runtime CPU-feature detection (`is_x86_feature_detected!`), cached in
//!    a `OnceLock`.
//!
//! A request above the host's capability is capped at the detected level —
//! forcing `avx2` on an SSE2-only host runs SSE2 rather than faulting — so
//! every resolved level is safe to execute. Non-`x86_64` targets always
//! resolve to [`SimdLevel::Scalar`]; the scalar bodies double as the
//! conformance oracle for the vector paths.
//!
//! # Exactness notes
//!
//! - f32 paths: lane-parallel over `j`, per-element op order unchanged →
//!   bitwise identical to scalar (pinned by the unit tests here, fuzz
//!   oracle 13 and the `DTSNN_SIMD=off` vs `auto` CI stage).
//! - int8 quantized dot: i16→i32 sign-extended widening multiplies; integer
//!   accumulation is associative, so the lane reduction is exact on the
//!   i32 grid — same integer, same single f32 rescale.
//! - Elementwise LIF/BatchNorm ops replicate the literal scalar expression
//!   (e.g. `u · (1 − s)`, not a mask select, so an `inf` membrane that
//!   spikes still produces the scalar path's `NaN`).

// The only unsafety here is calling `#[target_feature]` functions; every
// call site is guarded by the dispatch ladder, which never resolves above
// the detected CPU capability.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// The instruction tiers the kernels can dispatch to, ordered by
/// capability: a level's kernels may be used whenever the host supports it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Plain Rust loops — the conformance oracle and non-x86_64 path.
    Scalar,
    /// 128-bit SSE2 vectors (x86_64 baseline).
    Sse2,
    /// 256-bit AVX2 vectors.
    Avx2,
}

impl SimdLevel {
    /// All levels in ascending capability order.
    pub const ALL: [SimdLevel; 3] = [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2];

    /// Stable lowercase name (used in bench JSON context and CI logs).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }

    fn to_index(self) -> usize {
        match self {
            SimdLevel::Scalar => 1,
            SimdLevel::Sse2 => 2,
            SimdLevel::Avx2 => 3,
        }
    }

    fn from_index(i: usize) -> Option<SimdLevel> {
        match i {
            1 => Some(SimdLevel::Scalar),
            2 => Some(SimdLevel::Sse2),
            3 => Some(SimdLevel::Avx2),
            _ => None,
        }
    }
}

// Packed override: 0 = none, otherwise SimdLevel::to_index.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static ENV_LEVEL: OnceLock<Option<SimdLevel>> = OnceLock::new();
static DETECTED: OnceLock<SimdLevel> = OnceLock::new();

/// Parses a `DTSNN_SIMD` value. `Ok(None)` means auto (detected) dispatch;
/// `Err(())` flags a malformed value for the caller to warn about.
pub(crate) fn parse_simd(raw: &str) -> std::result::Result<Option<SimdLevel>, ()> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "auto" => Ok(None),
        "off" | "scalar" | "none" => Ok(Some(SimdLevel::Scalar)),
        "sse2" => Ok(Some(SimdLevel::Sse2)),
        "avx2" => Ok(Some(SimdLevel::Avx2)),
        _ => Err(()),
    }
}

#[cfg(target_arch = "x86_64")]
fn detect() -> SimdLevel {
    if std::arch::is_x86_feature_detected!("avx2") {
        SimdLevel::Avx2
    } else if std::arch::is_x86_feature_detected!("sse2") {
        SimdLevel::Sse2
    } else {
        SimdLevel::Scalar
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect() -> SimdLevel {
    SimdLevel::Scalar
}

/// The host's best supported level (cached runtime detection).
pub fn detected() -> SimdLevel {
    *DETECTED.get_or_init(detect)
}

/// Comma-separated list of the vector features the host supports, recorded
/// next to `host_cores` in bench JSON context blocks so committed numbers
/// stay interpretable across machines.
pub fn cpu_features() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut feats = Vec::new();
        for (name, have) in [
            ("avx512f", std::arch::is_x86_feature_detected!("avx512f")),
            ("avx2", std::arch::is_x86_feature_detected!("avx2")),
            ("fma", std::arch::is_x86_feature_detected!("fma")),
            ("sse4.2", std::arch::is_x86_feature_detected!("sse4.2")),
            ("sse2", std::arch::is_x86_feature_detected!("sse2")),
        ] {
            if have {
                feats.push(name);
            }
        }
        if feats.is_empty() {
            "none".to_string()
        } else {
            feats.join(",")
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "non-x86_64".to_string()
    }
}

fn env_level() -> Option<SimdLevel> {
    *ENV_LEVEL.get_or_init(|| match std::env::var("DTSNN_SIMD") {
        Ok(v) => match parse_simd(&v) {
            Ok(level) => {
                if let Some(l) = level {
                    if l > detected() {
                        eprintln!(
                            "dtsnn: warning: DTSNN_SIMD={v:?} exceeds this host's \
                             capability; capping at {}",
                            detected().name()
                        );
                    }
                }
                level
            }
            Err(()) => {
                // OnceLock init runs at most once, so this warning cannot
                // repeat per process.
                eprintln!(
                    "dtsnn: warning: DTSNN_SIMD={v:?} is not one of \
                     auto|off|scalar|sse2|avx2; using auto dispatch"
                );
                None
            }
        },
        Err(_) => None,
    })
}

/// The level the kernels will actually run at: the forced level (override →
/// `DTSNN_SIMD`) capped at the host capability, or the detected level.
/// Kernels hoist this once per call and pass it down, so the inner loops
/// never touch the atomics.
pub fn level() -> SimdLevel {
    let cap = detected();
    let packed = OVERRIDE.load(Ordering::Relaxed);
    if packed != 0 {
        return SimdLevel::from_index(packed).unwrap_or(SimdLevel::Scalar).min(cap);
    }
    env_level().map_or(cap, |l| l.min(cap))
}

/// Installs a process-wide level override (capped at the host capability at
/// use time); `None` restores env/auto dispatch. Returns the previous
/// override. Safe to flip concurrently: every level produces bitwise
/// identical f32 results, so the knob can never change a numeric output.
pub fn set_level(level: Option<SimdLevel>) -> Option<SimdLevel> {
    let packed = level.map_or(0, SimdLevel::to_index);
    SimdLevel::from_index(OVERRIDE.swap(packed, Ordering::Relaxed))
}

/// Runs `f` with the SIMD tier pinned to `level`, restoring the previous
/// override afterwards — the scoped guard the equivalence tests and the
/// speedup bench use to compare tiers in one process.
pub fn with_level<R>(level: SimdLevel, f: impl FnOnce() -> R) -> R {
    let prev = set_level(Some(level));
    let out = f();
    set_level(prev);
    out
}

// --------------------------------------------------------------------------
// Row primitives: the vectorizable inner loops of the matmul/bitset/CSR
// kernels. `c` and `b` are equal-length row slices; each lane owns one
// output column, so the per-element op order is exactly the scalar loop's.
// --------------------------------------------------------------------------

/// `c[j] += b[j]` — the binary row-add of the bitset/CSR gather kernels and
/// the bias broadcast.
#[inline]
pub fn add_row(c: &mut [f32], b: &[f32], level: SimdLevel) {
    #[cfg(target_arch = "x86_64")]
    {
        // short rows inline the scalar loop: the vector fns cannot inline
        // across the #[target_feature] boundary and the call costs more
        // than it saves under ~4 vectors (both tiers are bitwise equal,
        // so the gate is invisible to everything but the clock)
        if c.len() >= 32 {
            match level {
                // SAFETY: level() caps at the detected capability, so the
                // required CPU features are present.
                SimdLevel::Avx2 => return unsafe { add_row_avx2(c, b) },
                SimdLevel::Sse2 => return unsafe { add_row_sse2(c, b) },
                SimdLevel::Scalar => {}
            }
        }
    }
    let _ = level;
    for (cv, &bv) in c.iter_mut().zip(b) {
        *cv += bv;
    }
}

/// `c[j] += a * b[j]` — the scaled row-add of the dense and CSR kernels.
/// Explicit multiply-then-add per lane; never an FMA.
#[inline]
pub fn add_scaled_row(c: &mut [f32], a: f32, b: &[f32], level: SimdLevel) {
    #[cfg(target_arch = "x86_64")]
    {
        // same short-row gate as `add_row` — see the comment there
        if c.len() >= 32 {
            match level {
                // SAFETY: level() caps at the detected capability.
                SimdLevel::Avx2 => return unsafe { add_scaled_row_avx2(c, a, b) },
                SimdLevel::Sse2 => return unsafe { add_scaled_row_sse2(c, a, b) },
                SimdLevel::Scalar => {}
            }
        }
    }
    let _ = level;
    for (cv, &bv) in c.iter_mut().zip(b) {
        *cv += a * bv;
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use std::arch::x86_64::*;

    /// K-tile of the packed `matmul_nt` kernel: rows of packed `b` columns
    /// held in a stack tile (`NT_BLOCK_K × 8` floats = 4 KiB at AVX2 width).
    /// Per output element the tiles are visited in ascending order and the
    /// partial accumulator round-trips through `out` between tiles — an
    /// exact f32 store/load, so blocking stays bitwise neutral.
    pub(super) const NT_BLOCK_K: usize = 128;

    macro_rules! elementwise {
        ($name:ident, $feat:literal, $width:expr, $set1:ident, $loadu:ident,
         $storeu:ident, |$va:ident, $vb:ident| $vec:expr, |$sa:ident, $sb:ident| $scalar:expr) => {
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $name(c: &mut [f32], b: &[f32]) {
                let n = c.len().min(b.len());
                let mut j = 0;
                // SAFETY: j + WIDTH <= n bounds every pointer access.
                unsafe {
                    while j + $width <= n {
                        let $va = $loadu(c.as_ptr().add(j));
                        let $vb = $loadu(b.as_ptr().add(j));
                        $storeu(c.as_mut_ptr().add(j), $vec);
                        j += $width;
                    }
                }
                for jj in j..n {
                    let $sa = c[jj];
                    let $sb = b[jj];
                    c[jj] = $scalar;
                }
            }
        };
    }

    elementwise!(add_row_avx2_impl, "avx2", 8, _mm256_set1_ps, _mm256_loadu_ps,
        _mm256_storeu_ps, |a, b| _mm256_add_ps(a, b), |x, y| x + y);
    elementwise!(add_row_sse2_impl, "sse2", 4, _mm_set1_ps, _mm_loadu_ps,
        _mm_storeu_ps, |a, b| _mm_add_ps(a, b), |x, y| x + y);

    pub(super) use add_row_avx2_impl as add_row_avx2;
    pub(super) use add_row_sse2_impl as add_row_sse2;

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_scaled_row_avx2(c: &mut [f32], a: f32, b: &[f32]) {
        let n = c.len().min(b.len());
        let mut j = 0;
        // SAFETY: j + 8 <= n bounds every pointer access.
        unsafe {
            let av = _mm256_set1_ps(a);
            while j + 8 <= n {
                let cv = _mm256_loadu_ps(c.as_ptr().add(j));
                let bv = _mm256_loadu_ps(b.as_ptr().add(j));
                // mul then add — not fused, matching scalar rounding
                _mm256_storeu_ps(c.as_mut_ptr().add(j), _mm256_add_ps(cv, _mm256_mul_ps(av, bv)));
                j += 8;
            }
        }
        for jj in j..n {
            c[jj] += a * b[jj];
        }
    }

    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn add_scaled_row_sse2(c: &mut [f32], a: f32, b: &[f32]) {
        let n = c.len().min(b.len());
        let mut j = 0;
        // SAFETY: j + 4 <= n bounds every pointer access.
        unsafe {
            let av = _mm_set1_ps(a);
            while j + 4 <= n {
                let cv = _mm_loadu_ps(c.as_ptr().add(j));
                let bv = _mm_loadu_ps(b.as_ptr().add(j));
                _mm_storeu_ps(c.as_mut_ptr().add(j), _mm_add_ps(cv, _mm_mul_ps(av, bv)));
                j += 4;
            }
        }
        for jj in j..n {
            c[jj] += a * b[jj];
        }
    }

    macro_rules! nt_chunk {
        ($name:ident, $feat:literal, $width:expr, $set1:ident, $loadu:ident,
         $storeu:ident, $add:ident, $mul:ident) => {
            /// One worker's row chunk of `out[m,n] += a[m,k] × bᵀ[n,k]` over
            /// a zero-filled chunk: packs `$width` columns of `bᵀ` per
            /// k-tile into a stack-resident tile, broadcasts `a[i][p]` and
            /// does lane-parallel mul-then-add. Tail columns fall back to
            /// the scalar dot (same ascending-k order, overwrite of a zero).
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $name(
                a: &[f32],
                k: usize,
                first_row: usize,
                rows: usize,
                b: &[f32],
                n: usize,
                c: &mut [f32],
            ) {
                const W: usize = $width;
                let mut tile = [0.0f32; NT_BLOCK_K * $width];
                let jmain = n - n % W;
                for jb in (0..jmain).step_by(W) {
                    for pb in (0..k).step_by(NT_BLOCK_K) {
                        let pend = (pb + NT_BLOCK_K).min(k);
                        for l in 0..W {
                            let brow = &b[(jb + l) * k + pb..(jb + l) * k + pend];
                            for (pi, &bv) in brow.iter().enumerate() {
                                tile[pi * W + l] = bv;
                            }
                        }
                        for li in 0..rows {
                            let i = first_row + li;
                            let arow = &a[i * k + pb..i * k + pend];
                            // SAFETY: li * n + jb + W <= rows * n == c.len()
                            // (jb + W <= jmain <= n) and pi * W + W bounds
                            // the tile; loads/stores stay in range.
                            unsafe {
                                let cptr = c.as_mut_ptr().add(li * n + jb);
                                let mut acc = $loadu(cptr);
                                for (pi, &av) in arow.iter().enumerate() {
                                    let bv = $loadu(tile.as_ptr().add(pi * W));
                                    // mul then add — never fused
                                    acc = $add(acc, $mul($set1(av), bv));
                                }
                                $storeu(cptr, acc);
                            }
                        }
                    }
                }
                for li in 0..rows {
                    let i = first_row + li;
                    let arow = &a[i * k..(i + 1) * k];
                    for j in jmain..n {
                        let brow = &b[j * k..(j + 1) * k];
                        let mut acc = 0.0;
                        for (&av, &bv) in arow.iter().zip(brow) {
                            acc += av * bv;
                        }
                        c[li * n + j] = acc;
                    }
                }
            }
        };
    }

    nt_chunk!(nt_chunk_avx2, "avx2", 8, _mm256_set1_ps, _mm256_loadu_ps, _mm256_storeu_ps,
        _mm256_add_ps, _mm256_mul_ps);
    nt_chunk!(nt_chunk_sse2, "sse2", 4, _mm_set1_ps, _mm_loadu_ps, _mm_storeu_ps,
        _mm_add_ps, _mm_mul_ps);

    /// Builds a 32-byte mask (0xFF per set bit) from a 32-bit spike word
    /// half: broadcast the dword, shuffle byte `i/8` into byte `i`, test
    /// bit `i%8`.
    #[target_feature(enable = "avx2")]
    fn mask_from_bits32(bits: u32) -> __m256i {
        // intrinsics without memory access are safe inside a matching
        // #[target_feature] fn; only the pointer loads/stores need unsafe
        let v = _mm256_set1_epi32(bits as i32);
        #[rustfmt::skip]
        let group = _mm256_setr_epi8(
            0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1,
            2, 2, 2, 2, 2, 2, 2, 2, 3, 3, 3, 3, 3, 3, 3, 3,
        );
        #[rustfmt::skip]
        let sel = _mm256_setr_epi8(
            1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128,
            1, 2, 4, 8, 16, 32, 64, -128, 1, 2, 4, 8, 16, 32, 64, -128,
        );
        let bytes = _mm256_shuffle_epi8(v, group);
        _mm256_cmpeq_epi8(_mm256_and_si256(bytes, sel), sel)
    }

    /// Quantized dot of one packed spike row against one `i8` weight row:
    /// mask the active codes, sign-extend i8→i16, widen-multiply by one
    /// into i32 lanes, reduce exactly (integer adds are associative).
    /// Returns the same `i32` as the scalar bit-scan for any bit pattern.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn quant_dot_avx2(words: &[u64], q: &[i8]) -> i32 {
        let k = q.len();
        // SAFETY: full words guarantee base + 64 <= k, so the two 32-byte
        // code loads stay in bounds; partial trailing words take the scalar
        // scan below.
        unsafe {
            let ones = _mm256_set1_epi16(1);
            let mut acc = _mm256_setzero_si256();
            let mut tail = 0i32;
            for (wi, &word) in words.iter().enumerate() {
                if word == 0 {
                    continue;
                }
                let base = wi * 64;
                if base + 64 <= k {
                    for half in 0..2u32 {
                        let bits = (word >> (32 * half)) as u32;
                        if bits == 0 {
                            continue;
                        }
                        let mask = mask_from_bits32(bits);
                        let codes =
                            _mm256_loadu_si256(q.as_ptr().add(base + 32 * half as usize).cast());
                        let sel = _mm256_and_si256(codes, mask);
                        let lo = _mm256_cvtepi8_epi16(_mm256_castsi256_si128(sel));
                        let hi = _mm256_cvtepi8_epi16(_mm256_extracti128_si256::<1>(sel));
                        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(lo, ones));
                        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(hi, ones));
                    }
                } else {
                    let mut bits = word;
                    while bits != 0 {
                        let p = base + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        tail += i32::from(q[p]);
                    }
                }
            }
            let s = _mm_add_epi32(_mm256_castsi256_si128(acc), _mm256_extracti128_si256::<1>(acc));
            let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_11_10>(s));
            let s = _mm_add_epi32(s, _mm_shuffle_epi32::<0b00_00_00_01>(s));
            _mm_cvtsi128_si32(s).wrapping_add(tail)
        }
    }

    macro_rules! lif_ops {
        ($charge:ident, $heaviside:ident, $reset_zero:ident, $reset_sub:ident, $bn:ident,
         $feat:literal, $width:expr, $set1:ident, $loadu:ident, $storeu:ident,
         $add:ident, $sub:ident, $mul:ident, $cmpgt:expr, $and:ident, $cast:ident) => {
            /// `dst[i] = m[i] * tau + x[i]` — explicit mul then add.
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $charge(dst: &mut [f32], m: &[f32], tau: f32, x: &[f32]) {
                let n = dst.len().min(m.len()).min(x.len());
                let mut j = 0;
                // SAFETY: j + WIDTH <= n bounds every access.
                unsafe {
                    let tv = $set1(tau);
                    while j + $width <= n {
                        let mv = $loadu(m.as_ptr().add(j));
                        let xv = $loadu(x.as_ptr().add(j));
                        $storeu(dst.as_mut_ptr().add(j), $add($mul(mv, tv), xv));
                        j += $width;
                    }
                }
                for jj in j..n {
                    dst[jj] = m[jj] * tau + x[jj];
                }
            }

            /// `dst[i] = if u[i] > v_th { 1.0 } else { 0.0 }` (NaN → 0.0,
            /// like the scalar comparison).
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $heaviside(dst: &mut [f32], u: &[f32], v_th: f32) {
                let n = dst.len().min(u.len());
                let mut j = 0;
                // SAFETY: j + WIDTH <= n bounds every access.
                unsafe {
                    let tv = $set1(v_th);
                    let one = $set1(1.0);
                    while j + $width <= n {
                        let uv = $loadu(u.as_ptr().add(j));
                        let mask = $cmpgt(uv, tv);
                        $storeu(dst.as_mut_ptr().add(j), $and($cast(mask), one));
                        j += $width;
                    }
                }
                for jj in j..n {
                    dst[jj] = if u[jj] > v_th { 1.0 } else { 0.0 };
                }
            }

            /// `u[i] *= 1.0 - s[i]` — the literal multiply (an `inf`
            /// membrane that spikes yields `NaN` exactly like scalar).
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $reset_zero(u: &mut [f32], s: &[f32]) {
                let n = u.len().min(s.len());
                let mut j = 0;
                // SAFETY: j + WIDTH <= n bounds every access.
                unsafe {
                    let one = $set1(1.0);
                    while j + $width <= n {
                        let uv = $loadu(u.as_ptr().add(j));
                        let sv = $loadu(s.as_ptr().add(j));
                        $storeu(u.as_mut_ptr().add(j), $mul(uv, $sub(one, sv)));
                        j += $width;
                    }
                }
                for jj in j..n {
                    u[jj] *= 1.0 - s[jj];
                }
            }

            /// `u[i] -= v_th * s[i]`.
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $reset_sub(u: &mut [f32], s: &[f32], v_th: f32) {
                let n = u.len().min(s.len());
                let mut j = 0;
                // SAFETY: j + WIDTH <= n bounds every access.
                unsafe {
                    let tv = $set1(v_th);
                    while j + $width <= n {
                        let uv = $loadu(u.as_ptr().add(j));
                        let sv = $loadu(s.as_ptr().add(j));
                        $storeu(u.as_mut_ptr().add(j), $sub(uv, $mul(tv, sv)));
                        j += $width;
                    }
                }
                for jj in j..n {
                    u[jj] -= v_th * s[jj];
                }
            }

            /// `dst[i] = g * (src[i] - mean) * inv_std + b` with scalar
            /// left-to-right association.
            #[target_feature(enable = $feat)]
            pub(super) unsafe fn $bn(
                dst: &mut [f32],
                src: &[f32],
                g: f32,
                mean: f32,
                inv_std: f32,
                b: f32,
            ) {
                let n = dst.len().min(src.len());
                let mut j = 0;
                // SAFETY: j + WIDTH <= n bounds every access.
                unsafe {
                    let gv = $set1(g);
                    let mv = $set1(mean);
                    let iv = $set1(inv_std);
                    let bv = $set1(b);
                    while j + $width <= n {
                        let xv = $loadu(src.as_ptr().add(j));
                        let y = $add($mul($mul(gv, $sub(xv, mv)), iv), bv);
                        $storeu(dst.as_mut_ptr().add(j), y);
                        j += $width;
                    }
                }
                for jj in j..n {
                    dst[jj] = g * (src[jj] - mean) * inv_std + b;
                }
            }
        };
    }

    lif_ops!(charge_avx2, heaviside_avx2, reset_zero_avx2, reset_sub_avx2, bn_avx2,
        "avx2", 8, _mm256_set1_ps, _mm256_loadu_ps, _mm256_storeu_ps,
        _mm256_add_ps, _mm256_sub_ps, _mm256_mul_ps,
        |a, b| _mm256_cmp_ps::<_CMP_GT_OQ>(a, b), _mm256_and_ps, identity256);
    lif_ops!(charge_sse2, heaviside_sse2, reset_zero_sse2, reset_sub_sse2, bn_sse2,
        "sse2", 4, _mm_set1_ps, _mm_loadu_ps, _mm_storeu_ps,
        _mm_add_ps, _mm_sub_ps, _mm_mul_ps,
        |a, b| _mm_cmpgt_ps(a, b), _mm_and_ps, identity128);

    #[inline(always)]
    fn identity256(v: __m256) -> __m256 {
        v
    }

    #[inline(always)]
    fn identity128(v: __m128) -> __m128 {
        v
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{
    add_row_avx2, add_row_sse2, add_scaled_row_avx2, add_scaled_row_sse2, bn_avx2, bn_sse2,
    charge_avx2, charge_sse2, heaviside_avx2, heaviside_sse2, nt_chunk_avx2, nt_chunk_sse2,
    quant_dot_avx2, reset_sub_avx2, reset_sub_sse2, reset_zero_avx2, reset_zero_sse2,
};

/// One worker's row chunk of the `matmul_nt` kernel
/// (`out[m,n] += a[m,k] × bᵀ[n,k]`, `b` stored `[n, k]`) over a
/// **zero-filled** chunk `c` of `rows` output rows starting at `first_row`.
/// The vector tiers pack `b` columns into a stack tile and keep eight (or
/// four) independent column accumulators per register; the scalar tier is
/// the straight-line dot the kernel has always run. All tiers accumulate
/// each output element over `k` in ascending order with explicit
/// mul-then-add, so results are bitwise identical.
#[inline]
#[allow(clippy::too_many_arguments)] // mirrors the raw kernel signature
pub fn matmul_nt_chunk(
    a: &[f32],
    k: usize,
    first_row: usize,
    rows: usize,
    b: &[f32],
    n: usize,
    c: &mut [f32],
    level: SimdLevel,
) {
    #[cfg(target_arch = "x86_64")]
    {
        match level {
            // SAFETY: level() caps at the detected capability.
            SimdLevel::Avx2 => return unsafe { nt_chunk_avx2(a, k, first_row, rows, b, n, c) },
            SimdLevel::Sse2 => return unsafe { nt_chunk_sse2(a, k, first_row, rows, b, n, c) },
            SimdLevel::Scalar => {}
        }
    }
    let _ = level;
    for (local_i, crow) in c.chunks_mut(n).enumerate().take(rows) {
        let i = first_row + local_i;
        let arow = &a[i * k..(i + 1) * k];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0.0;
            for (&av, &bv) in arow.iter().zip(brow) {
                acc += av * bv;
            }
            *cv = acc;
        }
    }
}

/// Exact integer dot of a packed spike row (`words`, bit `p` set ⇔ input
/// `p` active) against an `i8` code row of length `q.len()`: the sum of the
/// active codes as `i32`. The AVX2 tier uses sign-extended widening
/// multiplies; integer accumulation is associative, so the lane reduction
/// returns the identical integer for every tier.
#[inline]
pub fn quant_dot(words: &[u64], q: &[i8], level: SimdLevel) -> i32 {
    #[cfg(target_arch = "x86_64")]
    {
        // The widening path needs AVX2; SSE2 falls back to the scalar scan.
        if level == SimdLevel::Avx2 {
            // SAFETY: level() caps at the detected capability.
            return unsafe { quant_dot_avx2(words, q) };
        }
    }
    let _ = level;
    let mut acc = 0i32;
    for (wi, &word) in words.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let p = wi * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            acc += i32::from(q[p]);
        }
    }
    acc
}

// --------------------------------------------------------------------------
// Elementwise layer ops (LIF / BatchNorm hot loops). These read the active
// level internally — one atomic load amortized over a whole activation
// buffer.
// --------------------------------------------------------------------------

/// Fused LIF charge `dst[i] = m[i] * tau + x[i]` (Eq. 2 with the membrane
/// decay folded in) — explicit mul then add, bitwise identical to scalar.
#[inline]
pub fn lif_charge(dst: &mut [f32], m: &[f32], tau: f32, x: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        match level() {
            // SAFETY: level() caps at the detected capability.
            SimdLevel::Avx2 => return unsafe { charge_avx2(dst, m, tau, x) },
            SimdLevel::Sse2 => return unsafe { charge_sse2(dst, m, tau, x) },
            SimdLevel::Scalar => {}
        }
    }
    for ((o, &mv), &xv) in dst.iter_mut().zip(m).zip(x) {
        *o = mv * tau + xv;
    }
}

/// Heaviside spike `dst[i] = if u[i] > v_th { 1.0 } else { 0.0 }`.
#[inline]
pub fn lif_heaviside(dst: &mut [f32], u: &[f32], v_th: f32) {
    #[cfg(target_arch = "x86_64")]
    {
        match level() {
            // SAFETY: level() caps at the detected capability.
            SimdLevel::Avx2 => return unsafe { heaviside_avx2(dst, u, v_th) },
            SimdLevel::Sse2 => return unsafe { heaviside_sse2(dst, u, v_th) },
            SimdLevel::Scalar => {}
        }
    }
    for (o, &uv) in dst.iter_mut().zip(u) {
        *o = if uv > v_th { 1.0 } else { 0.0 };
    }
}

/// Hard reset `u[i] *= 1.0 - s[i]` (the literal multiply — see module docs).
#[inline]
pub fn lif_reset_zero(u: &mut [f32], s: &[f32]) {
    #[cfg(target_arch = "x86_64")]
    {
        match level() {
            // SAFETY: level() caps at the detected capability.
            SimdLevel::Avx2 => return unsafe { reset_zero_avx2(u, s) },
            SimdLevel::Sse2 => return unsafe { reset_zero_sse2(u, s) },
            SimdLevel::Scalar => {}
        }
    }
    for (uv, &sv) in u.iter_mut().zip(s) {
        *uv *= 1.0 - sv;
    }
}

/// Soft reset `u[i] -= v_th * s[i]`.
#[inline]
pub fn lif_reset_subtract(u: &mut [f32], s: &[f32], v_th: f32) {
    #[cfg(target_arch = "x86_64")]
    {
        match level() {
            // SAFETY: level() caps at the detected capability.
            SimdLevel::Avx2 => return unsafe { reset_sub_avx2(u, s, v_th) },
            SimdLevel::Sse2 => return unsafe { reset_sub_sse2(u, s, v_th) },
            SimdLevel::Scalar => {}
        }
    }
    for (uv, &sv) in u.iter_mut().zip(s) {
        *uv -= v_th * sv;
    }
}

/// Eval-mode BatchNorm affine `dst[i] = g * (src[i] - mean) * inv_std + b`
/// over one contiguous channel plane, scalar association preserved.
#[inline]
pub fn bn_affine(dst: &mut [f32], src: &[f32], g: f32, mean: f32, inv_std: f32, b: f32) {
    #[cfg(target_arch = "x86_64")]
    {
        match level() {
            // SAFETY: level() caps at the detected capability.
            SimdLevel::Avx2 => return unsafe { bn_avx2(dst, src, g, mean, inv_std, b) },
            SimdLevel::Sse2 => return unsafe { bn_sse2(dst, src, g, mean, inv_std, b) },
            SimdLevel::Scalar => {}
        }
    }
    for (o, &xv) in dst.iter_mut().zip(src) {
        *o = g * (xv - mean) * inv_std + b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;
    use std::sync::Mutex;

    // Tests that flip the process-wide level override serialize here so
    // they cannot observe each other's override. Property tests that force
    // thread counts as well take this lock first for a stable order.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn levels_to_test() -> Vec<SimdLevel> {
        SimdLevel::ALL.iter().copied().filter(|&l| l <= detected()).collect()
    }

    fn randn(n: usize, rng: &mut TensorRng) -> Vec<f32> {
        let mut v = vec![0.0f32; n];
        rng.fill_normal(&mut v, 0.0, 1.0);
        v
    }

    #[test]
    fn parse_accepts_names_and_rejects_garbage() {
        assert_eq!(parse_simd("auto"), Ok(None));
        assert_eq!(parse_simd(""), Ok(None));
        assert_eq!(parse_simd("off"), Ok(Some(SimdLevel::Scalar)));
        assert_eq!(parse_simd(" Scalar "), Ok(Some(SimdLevel::Scalar)));
        assert_eq!(parse_simd("none"), Ok(Some(SimdLevel::Scalar)));
        assert_eq!(parse_simd("SSE2"), Ok(Some(SimdLevel::Sse2)));
        assert_eq!(parse_simd("avx2"), Ok(Some(SimdLevel::Avx2)));
        assert_eq!(parse_simd("avx512"), Err(()));
        assert_eq!(parse_simd("fast"), Err(()));
        assert_eq!(parse_simd("1"), Err(()));
        assert_eq!(parse_simd("sse 2"), Err(()));
    }

    #[test]
    fn override_guard_shadows_restores_and_caps() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        assert_eq!(set_level(None), None);
        with_level(SimdLevel::Scalar, || {
            assert_eq!(level(), SimdLevel::Scalar);
            with_level(SimdLevel::Avx2, || {
                // capped at the host capability, never above
                assert_eq!(level(), SimdLevel::Avx2.min(detected()));
            });
            assert_eq!(level(), SimdLevel::Scalar);
        });
        assert_eq!(set_level(None), None);
        // unforced dispatch never exceeds the detected capability; with no
        // DTSNN_SIMD in the environment it is exactly the detected level
        // (the env knob may lower the baseline — the CI simd stage runs
        // this very suite under DTSNN_SIMD=off)
        assert!(level() <= detected());
        if std::env::var_os("DTSNN_SIMD").is_none() {
            assert_eq!(level(), detected());
        }
    }

    #[test]
    fn level_names_are_stable() {
        assert_eq!(SimdLevel::Scalar.name(), "scalar");
        assert_eq!(SimdLevel::Sse2.name(), "sse2");
        assert_eq!(SimdLevel::Avx2.name(), "avx2");
        assert!(!cpu_features().is_empty());
    }

    #[test]
    fn row_primitives_match_scalar_bitwise() {
        let mut rng = TensorRng::seed_from(401);
        // lengths straddle vector widths and tails, plus tricky values
        for n in [0usize, 1, 3, 4, 7, 8, 9, 31, 64, 257] {
            let b = randn(n, &mut rng);
            let base = randn(n, &mut rng);
            for &a in &[0.0f32, 1.0, -0.37, 1e-30] {
                for lvl in levels_to_test() {
                    let mut want = base.clone();
                    for (cv, &bv) in want.iter_mut().zip(&b) {
                        *cv += a * bv;
                    }
                    let mut got = base.clone();
                    add_scaled_row(&mut got, a, &b, lvl);
                    assert_eq!(
                        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "add_scaled_row n={n} a={a} {lvl:?}"
                    );

                    let mut want = base.clone();
                    for (cv, &bv) in want.iter_mut().zip(&b) {
                        *cv += bv;
                    }
                    let mut got = base.clone();
                    add_row(&mut got, &b, lvl);
                    assert_eq!(
                        want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "add_row n={n} {lvl:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn nt_chunk_matches_scalar_bitwise() {
        let mut rng = TensorRng::seed_from(402);
        // shapes straddle the j-tile width and the k-tile depth
        for (m, k, n) in [(1, 5, 3), (3, 40, 17), (2, 200, 8), (5, 300, 21), (4, 64, 16)] {
            let a = randn(m * k, &mut rng);
            let b = randn(n * k, &mut rng);
            let mut want = vec![0.0f32; m * n];
            matmul_nt_chunk(&a, k, 0, m, &b, n, &mut want, SimdLevel::Scalar);
            for lvl in levels_to_test() {
                let mut got = vec![0.0f32; m * n];
                matmul_nt_chunk(&a, k, 0, m, &b, n, &mut got, lvl);
                assert_eq!(
                    want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "nt m={m} k={k} n={n} {lvl:?}"
                );
            }
        }
    }

    #[test]
    fn quant_dot_matches_scalar_exactly() {
        let mut rng = TensorRng::seed_from(403);
        for k in [1usize, 63, 64, 65, 128, 200, 400] {
            let words_len = k.div_ceil(64);
            for density in [0.0f32, 0.1, 0.5, 1.0] {
                let mut words = vec![0u64; words_len];
                for p in 0..k {
                    if rng.bernoulli(density) {
                        words[p / 64] |= 1 << (p % 64);
                    }
                }
                let q: Vec<i8> =
                    (0..k).map(|_| (rng.uniform(-128.0, 128.0) as i32).clamp(-128, 127) as i8).collect();
                let want = quant_dot(&words, &q, SimdLevel::Scalar);
                for lvl in levels_to_test() {
                    assert_eq!(want, quant_dot(&words, &q, lvl), "k={k} d={density} {lvl:?}");
                }
            }
        }
    }

    #[test]
    fn elementwise_ops_match_scalar_bitwise_including_nonfinite() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let mut rng = TensorRng::seed_from(404);
        for n in [1usize, 7, 8, 9, 100] {
            let mut u = randn(n, &mut rng);
            // seed non-finite membranes: the reset must reproduce scalar
            // inf·0 → NaN behavior, not mask it away
            if n > 2 {
                u[0] = f32::INFINITY;
                u[1] = f32::NAN;
            }
            let m = randn(n, &mut rng);
            let x = randn(n, &mut rng);
            let spikes: Vec<f32> =
                (0..n).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();

            let scalar = with_level(SimdLevel::Scalar, || {
                let mut charge = vec![0.0f32; n];
                lif_charge(&mut charge, &m, 0.5, &x);
                let mut spk = vec![0.0f32; n];
                lif_heaviside(&mut spk, &u, 1.0);
                let mut rz = u.clone();
                lif_reset_zero(&mut rz, &spikes);
                let mut rs = u.clone();
                lif_reset_subtract(&mut rs, &spikes, 1.0);
                let mut bn = vec![0.0f32; n];
                bn_affine(&mut bn, &x, 1.3, -0.2, 0.9, 0.1);
                (charge, spk, rz, rs, bn)
            });
            for lvl in levels_to_test() {
                let vec = with_level(lvl, || {
                    let mut charge = vec![0.0f32; n];
                    lif_charge(&mut charge, &m, 0.5, &x);
                    let mut spk = vec![0.0f32; n];
                    lif_heaviside(&mut spk, &u, 1.0);
                    let mut rz = u.clone();
                    lif_reset_zero(&mut rz, &spikes);
                    let mut rs = u.clone();
                    lif_reset_subtract(&mut rs, &spikes, 1.0);
                    let mut bn = vec![0.0f32; n];
                    bn_affine(&mut bn, &x, 1.3, -0.2, 0.9, 0.1);
                    (charge, spk, rz, rs, bn)
                });
                for (name, s, v) in [
                    ("charge", &scalar.0, &vec.0),
                    ("heaviside", &scalar.1, &vec.1),
                    ("reset_zero", &scalar.2, &vec.2),
                    ("reset_sub", &scalar.3, &vec.3),
                    ("bn", &scalar.4, &vec.4),
                ] {
                    assert_eq!(
                        s.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        v.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                        "{name} n={n} {lvl:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_families_match_scalar_bitwise_across_thread_counts() {
        // The satellite property test: dense (mm/tn/nt), bitset, CSR and
        // quantized public entry points, forced-scalar vs each vector tier,
        // at 1 and 4 workers — all compared to_bits.
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let mut rng = TensorRng::seed_from(405);
        let a = crate::Tensor::randn(&[13, 150], 0.0, 1.0, &mut rng);
        let b = crate::Tensor::randn(&[150, 37], 0.0, 1.0, &mut rng);
        let bt = crate::Tensor::randn(&[37, 150], 0.0, 1.0, &mut rng);
        let mut spikes = crate::Tensor::zeros(&[13, 150]);
        for v in spikes.data_mut().iter_mut() {
            if rng.bernoulli(0.2) {
                *v = 1.0;
            }
        }
        let qw = crate::QuantizedWeights::from_tensor(&bt, 8).unwrap();
        let run = || {
            let mm = a.matmul(&b).unwrap();
            let tn = b.matmul_tn(&bt.transpose2d().unwrap()).unwrap();
            let nt = a.matmul_nt(&bt).unwrap();
            let sp_mm = spikes.matmul(&b).unwrap(); // bitset path (binary, sparse)
            let sp_nt = spikes.matmul_nt(&bt).unwrap();
            let q = qw.matmul_nt(&spikes).unwrap();
            [mm, tn, nt, sp_mm, sp_nt, q]
                .iter()
                .map(|t| t.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>())
                .collect::<Vec<_>>()
        };
        for threads in [1usize, 4] {
            let want = crate::parallel::with_threads(threads, || {
                with_level(SimdLevel::Scalar, run)
            });
            for lvl in levels_to_test() {
                let got = crate::parallel::with_threads(threads, || with_level(lvl, run));
                assert_eq!(want, got, "threads={threads} {lvl:?}");
            }
        }
    }
}
