//! Bit-packed spike operands: one `u64` word per 64 activations.
//!
//! Binary spike tensors carry one bit of information per element, yet the
//! CSR path in [`crate::sparse`] spends a `u32` index plus an `f32`
//! coefficient per active entry. [`BitMatrix`] packs each operand row into
//! `u64` words instead — a 64× cut in activation memory against dense f32 —
//! and its kernels walk the words with `trailing_zeros` / `bits &= bits - 1`,
//! turning the gather loop into branch-light word arithmetic.
//!
//! # Bitwise equivalence with the dense path
//!
//! The word scan visits set bits in **ascending column order**: within a
//! word, `trailing_zeros` always yields the lowest set bit, and words are
//! visited low to high. Every kernel therefore accumulates each output
//! element over the active `p` indices in exactly the order the dense
//! kernels visit them after their `== 0.0` skip, and — because the operand
//! is binary — each active term is a plain add (`1.0 * x == x`). The same
//! argument that makes [`crate::SpikeMatrix`] bitwise identical to dense
//! (see the [`crate::sparse`] module docs) applies verbatim, so dense, CSR
//! and bitset results are **bitwise identical** for any thread count.
//!
//! A [`BitMatrix`] can only represent a **binary** operand (every value
//! exactly `0.0` or `1.0`; `-0.0` counts as inactive). The builders reject
//! anything else so a misrouted ternary/analog operand fails loudly instead
//! of silently losing coefficients — the dispatch layer in
//! [`crate::backend`] measures binarity first and routes non-binary
//! operands to CSR.

use crate::{parallel, simd, AlignedWords, Conv2dSpec, Result, Tensor, TensorError};

/// Bit-packed binary matrix: row `i`'s active columns are the set bits of
/// `words[i*words_per_row..][..words_per_row]`, bit `j % 64` of word
/// `j / 64`. Buffers are retained across [`BitMatrix::clear`]/rebuild
/// cycles, so a matrix parked in a [`crate::Workspace`] costs no
/// steady-state allocations.
#[derive(Debug, Clone, Default)]
pub struct BitMatrix {
    rows: usize,
    cols: usize,
    words_per_row: usize,
    words: AlignedWords,
}

fn non_binary(v: f32) -> TensorError {
    TensorError::InvalidArgument(format!(
        "BitMatrix requires a binary (0/1) operand, found {v}; route non-binary \
         operands to the CSR backend"
    ))
}

impl BitMatrix {
    /// An empty matrix with no retained capacity.
    pub fn new() -> Self {
        BitMatrix::default()
    }

    /// Logical row count of the last build.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count of the last build.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of set bits (active entries).
    pub fn nnz(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Empties the matrix, keeping allocated capacity for the next build.
    pub fn clear(&mut self) {
        self.rows = 0;
        self.cols = 0;
        self.words_per_row = 0;
        self.words.clear();
    }

    /// The packed words of row `i` (crate-visible so the quantized integer
    /// kernel can feed whole words to the SIMD dot).
    pub(crate) fn row_words(&self, i: usize) -> &[u64] {
        &self.words[i * self.words_per_row..(i + 1) * self.words_per_row]
    }

    fn reset(&mut self, rows: usize, cols: usize) {
        self.clear();
        self.rows = rows;
        self.cols = cols;
        self.words_per_row = cols.div_ceil(64);
        // clear() + resize() zero-fills reused capacity
        self.words.resize(rows * self.words_per_row, 0);
    }

    /// Rebuilds from a dense row-major `[rows, cols]` buffer in one pass.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the buffer length
    /// disagrees and [`TensorError::InvalidArgument`] on any value other
    /// than `0.0` / `1.0`.
    pub fn build_from_dense(&mut self, a: &[f32], rows: usize, cols: usize) -> Result<()> {
        if a.len() != rows * cols {
            return Err(TensorError::LengthMismatch { expected: rows * cols, actual: a.len() });
        }
        self.reset(rows, cols);
        let wpr = self.words_per_row;
        for (i, row) in a.chunks(cols.max(1)).take(rows).enumerate() {
            let base = i * wpr;
            // branchless word-at-a-time pack: each 64-float chunk becomes one
            // u64 with no per-element control flow, so the scan vectorizes
            for (wi, chunk) in row.chunks(64).enumerate() {
                let mut word = 0u64;
                let mut ok = true;
                for (bit, &v) in chunk.iter().enumerate() {
                    word |= u64::from(v == 1.0) << bit;
                    ok &= (v == 0.0) | (v == 1.0);
                }
                if !ok {
                    let bad =
                        chunk.iter().copied().find(|&v| v != 0.0 && v != 1.0).unwrap_or(f32::NAN);
                    return Err(non_binary(bad));
                }
                self.words[base + wi] = word;
            }
        }
        Ok(())
    }

    /// Rebuilds as the transpose of a dense `[k, m]` buffer: logical shape
    /// `[m, k]`, so [`BitMatrix::matmul_into`] computes `aᵀ × b` — the
    /// bitset counterpart of [`crate::Tensor::matmul_tn`]. A single pass
    /// suffices (unlike the CSR two-pass build): scattered bits land at
    /// their final position and sort themselves within each word.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BitMatrix::build_from_dense`].
    pub fn build_transposed_from_dense(&mut self, a: &[f32], k: usize, m: usize) -> Result<()> {
        if a.len() != k * m {
            return Err(TensorError::LengthMismatch { expected: k * m, actual: a.len() });
        }
        self.reset(m, k);
        let wpr = self.words_per_row;
        for (p, row) in a.chunks(m.max(1)).take(k).enumerate() {
            let (word, bit) = (p / 64, 1u64 << (p % 64));
            for (i, &v) in row.iter().enumerate() {
                if v == 1.0 {
                    self.words[i * wpr + word] |= bit;
                } else if v != 0.0 {
                    return Err(non_binary(v));
                }
            }
        }
        Ok(())
    }

    /// Rebuilds as the im2col unfolding of `input` (`[n, c, h, w]`), setting
    /// **only active patch taps** — the dense `[n*oh*ow, c*k*k]` column
    /// matrix is never materialized and padding taps stay unset. The scan
    /// follows the same `(ci, ky, kx)` order as [`crate::im2col`]; since
    /// bits self-sort within their words, the downstream accumulation order
    /// matches the dense path exactly.
    ///
    /// # Errors
    ///
    /// Returns the same shape/geometry errors as [`crate::im2col`], plus
    /// [`TensorError::InvalidArgument`] on non-binary input values.
    pub fn build_from_im2col(&mut self, input: &Tensor, spec: &Conv2dSpec) -> Result<()> {
        let d = input.dims();
        if d.len() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, actual: d.len() });
        }
        let [n, c, h, w] = [d[0], d[1], d[2], d[3]];
        if c != spec.in_channels {
            return Err(TensorError::ShapeMismatch {
                expected: vec![n, spec.in_channels, h, w],
                actual: d.to_vec(),
            });
        }
        let (oh, ow) = spec.output_hw(h, w)?;
        let k = spec.kernel;
        self.reset(n * oh * ow, spec.patch_len());
        let wpr = self.words_per_row;
        let src = input.data();
        let pad = spec.padding as isize;
        for flat in 0..self.rows {
            let ox = flat % ow;
            let oy = (flat / ow) % oh;
            let ni = flat / (ow * oh);
            let iy0 = (oy * spec.stride) as isize - pad;
            let ix0 = (ox * spec.stride) as isize - pad;
            let base = flat * wpr;
            for ci in 0..c {
                let cbase = (ni * c + ci) * h * w;
                for ky in 0..k {
                    let iy = iy0 + ky as isize;
                    if iy < 0 || iy >= h as isize {
                        continue; // padding taps stay unset
                    }
                    let srow = cbase + iy as usize * w;
                    let drow = (ci * k + ky) * k;
                    for kx in 0..k {
                        let ix = ix0 + kx as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        let v = src[srow + ix as usize];
                        if v == 1.0 {
                            let j = drow + kx;
                            self.words[base + j / 64] |= 1u64 << (j % 64);
                        } else if v != 0.0 {
                            return Err(non_binary(v));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// `self[rows, cols] × b[cols, n] → out[rows, n]`, accumulating into
    /// `out` (callers pass a zero-filled buffer). Each set bit adds row `p`
    /// of `b`; bits are visited in ascending `p` order, so results are
    /// bitwise identical to the dense and CSR kernels for any thread count.
    pub fn matmul_into(&self, b: &[f32], n: usize, out: &mut [f32]) {
        debug_assert_eq!(b.len(), self.cols * n);
        debug_assert_eq!(out.len(), self.rows * n);
        if self.rows == 0 || n == 0 {
            return;
        }
        let work = self.nnz().saturating_mul(n);
        let lvl = simd::level();
        parallel::for_each_row_chunk(out, n, self.rows, work, |first_row, c| {
            for (local_i, crow) in c.chunks_mut(n).enumerate() {
                let i = first_row + local_i;
                for (wi, &word) in self.row_words(i).iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let p = wi * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let brow = &b[p * n..p * n + n];
                        simd::add_row(crow, brow, lvl);
                    }
                }
            }
        });
    }

    /// `self[rows, cols] × bᵀ → out[rows, n]` where `b` is row-major
    /// `[n, cols]` — the bitset counterpart of [`crate::Tensor::matmul_nt`],
    /// writing into a zero-filled `out`. Each packed row is decoded once
    /// into a stack-resident batch of ascending indices; the gather loop
    /// then matches the CSR kernel shape — register accumulator, one
    /// contiguous row of `b` per output column — while the operand itself
    /// stays 64× smaller than the CSR index list. Batches are flushed in
    /// ascending order, so per output element the active `p` arrive low to
    /// high and results stay bitwise identical to dense and CSR.
    pub fn matmul_nt_into(&self, b: &[f32], n: usize, out: &mut [f32]) {
        debug_assert_eq!(b.len(), self.cols * n);
        debug_assert_eq!(out.len(), self.rows * n);
        if self.rows == 0 || n == 0 {
            return;
        }
        let k = self.cols;
        let work = self.nnz().saturating_mul(n);
        parallel::for_each_row_chunk(out, n, self.rows, work, |first_row, c| {
            // stack-resident index batch: the packed row is decoded once and
            // the inner gather loop reads L1-hot u32 indices, exactly like
            // the CSR kernel — without CSR's per-entry index storage
            let mut batch = [0u32; 128];
            for (local_i, crow) in c.chunks_mut(n).enumerate() {
                let words = self.row_words(first_row + local_i);
                let flush = |batch: &[u32], first: bool, crow: &mut [f32]| {
                    for (j, cv) in crow.iter_mut().enumerate() {
                        let brow = &b[j * k..(j + 1) * k];
                        let mut acc = if first { 0.0 } else { *cv };
                        for &p in batch {
                            acc += brow[p as usize];
                        }
                        *cv = acc;
                    }
                };
                let mut len = 0usize;
                let mut first = true;
                for (wi, &word) in words.iter().enumerate() {
                    let base = (wi * 64) as u32;
                    let mut bits = word;
                    while bits != 0 {
                        batch[len] = base + bits.trailing_zeros();
                        bits &= bits - 1;
                        len += 1;
                        if len == batch.len() {
                            flush(&batch, first, crow);
                            len = 0;
                            first = false;
                        }
                    }
                }
                flush(&batch[..len], first, crow);
            }
        });
    }

    /// Visits the active columns of row `i` in ascending order. The
    /// quantized kernel now scans words via [`crate::simd::quant_dot`];
    /// this stays as the readable reference for the tests below.
    #[cfg(test)]
    pub(crate) fn for_each_active<F: FnMut(usize)>(&self, i: usize, mut f: F) {
        for (wi, &word) in self.row_words(i).iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                f(wi * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sparse::with_density_threshold, SpikeMatrix, TensorRng};

    fn bits_of(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    fn spikes(dims: &[usize], density: f32, rng: &mut TensorRng) -> Tensor {
        let mut t = Tensor::zeros(dims);
        for v in t.data_mut().iter_mut() {
            if rng.bernoulli(density) {
                *v = 1.0;
            }
        }
        t
    }

    #[test]
    fn build_from_dense_sets_expected_bits() {
        let mut bm = BitMatrix::new();
        // 70 columns straddles a word boundary
        let mut a = vec![0.0f32; 2 * 70];
        for j in [0usize, 63, 64, 69] {
            a[j] = 1.0; // row 0
        }
        a[70 + 5] = 1.0; // row 1
        bm.build_from_dense(&a, 2, 70).unwrap();
        assert_eq!(bm.rows(), 2);
        assert_eq!(bm.cols(), 70);
        assert_eq!(bm.nnz(), 5);
        let mut seen = Vec::new();
        bm.for_each_active(0, |p| seen.push(p));
        assert_eq!(seen, vec![0, 63, 64, 69]);
        seen.clear();
        bm.for_each_active(1, |p| seen.push(p));
        assert_eq!(seen, vec![5]);
    }

    #[test]
    fn builders_reject_non_binary_values() {
        let mut bm = BitMatrix::new();
        assert!(bm.build_from_dense(&[1.0, 0.5], 1, 2).is_err());
        assert!(bm.build_from_dense(&[-1.0, 0.0], 1, 2).is_err());
        assert!(bm.build_transposed_from_dense(&[2.0, 0.0], 1, 2).is_err());
        // -0.0 is inactive, not an error
        assert!(bm.build_from_dense(&[-0.0, 1.0], 1, 2).is_ok());
        assert_eq!(bm.nnz(), 1);
        // length mismatch
        assert!(bm.build_from_dense(&[1.0], 2, 3).is_err());
    }

    #[test]
    fn bitset_matmul_family_matches_dense_and_csr_bitwise() {
        let mut rng = TensorRng::seed_from(171);
        let a = spikes(&[33, 70], 0.15, &mut rng);
        let b = Tensor::randn(&[70, 21], 0.0, 1.0, &mut rng);
        let bt = Tensor::randn(&[21, 70], 0.0, 1.0, &mut rng); // [n, k]
        let at = spikes(&[70, 33], 0.15, &mut rng); // [k, m]
        for threads in [1, 4] {
            parallel::with_threads(threads, || {
                // dense references
                let (d_mm, d_tn, d_nt) = with_density_threshold(-1.0, || {
                    (
                        a.matmul(&b).unwrap(),
                        at.matmul_tn(&b).unwrap(),
                        a.matmul_nt(&bt).unwrap(),
                    )
                });

                // raw bitset kernels
                let mut bm = BitMatrix::new();
                bm.build_from_dense(a.data(), 33, 70).unwrap();
                let mut out = vec![0.0f32; 33 * 21];
                bm.matmul_into(b.data(), 21, &mut out);
                assert_eq!(bits_of(&d_mm), out.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

                out.iter_mut().for_each(|v| *v = 0.0);
                bm.matmul_nt_into(bt.data(), 21, &mut out);
                assert_eq!(bits_of(&d_nt), out.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

                let mut tm = BitMatrix::new();
                tm.build_transposed_from_dense(at.data(), 70, 33).unwrap();
                out.iter_mut().for_each(|v| *v = 0.0);
                tm.matmul_into(b.data(), 21, &mut out);
                assert_eq!(bits_of(&d_tn), out.iter().map(|v| v.to_bits()).collect::<Vec<_>>());

                // CSR agrees too (the existing oracle, re-pinned here)
                let mut sm = SpikeMatrix::new();
                sm.build_from_dense(a.data(), 33, 70).unwrap();
                let mut csr = vec![0.0f32; 33 * 21];
                sm.matmul_into(b.data(), 21, &mut csr);
                assert_eq!(bits_of(&d_mm), csr.iter().map(|v| v.to_bits()).collect::<Vec<_>>());
            });
        }
    }

    #[test]
    fn transposed_build_matches_explicit_transpose() {
        let mut rng = TensorRng::seed_from(172);
        let a = spikes(&[12, 9], 0.3, &mut rng); // [k, m]
        let mut tn = BitMatrix::new();
        tn.build_transposed_from_dense(a.data(), 12, 9).unwrap();
        let at = a.transpose2d().unwrap();
        let mut explicit = BitMatrix::new();
        explicit.build_from_dense(at.data(), 9, 12).unwrap();
        assert_eq!(tn.words, explicit.words);
        assert_eq!(tn.nnz(), explicit.nnz());
    }

    #[test]
    fn im2col_build_matches_spike_matrix_columns() {
        let mut rng = TensorRng::seed_from(173);
        let spec = Conv2dSpec::new(3, 5, 3, 1, 1).unwrap();
        let x = spikes(&[2, 3, 8, 8], 0.12, &mut rng);
        let mut bm = BitMatrix::new();
        bm.build_from_im2col(&x, &spec).unwrap();
        let mut sm = SpikeMatrix::new();
        sm.build_from_im2col(&x, &spec).unwrap();
        assert_eq!(bm.rows(), sm.rows());
        assert_eq!(bm.cols(), sm.cols());
        assert_eq!(bm.nnz(), sm.nnz());
        // both feed the same product; results must be bitwise identical
        let w_t = Tensor::randn(&[spec.patch_len(), 5], 0.0, 0.5, &mut rng);
        let rows = bm.rows();
        let mut a_out = vec![0.0f32; rows * 5];
        let mut b_out = vec![0.0f32; rows * 5];
        bm.matmul_into(w_t.data(), 5, &mut a_out);
        sm.matmul_into(w_t.data(), 5, &mut b_out);
        let ab: Vec<u32> = a_out.iter().map(|v| v.to_bits()).collect();
        let bb: Vec<u32> = b_out.iter().map(|v| v.to_bits()).collect();
        assert_eq!(ab, bb);
    }

    #[test]
    fn clear_retains_capacity() {
        let mut bm = BitMatrix::new();
        bm.build_from_dense(&[1.0, 0.0, 0.0, 1.0], 2, 2).unwrap();
        let cap = bm.words.capacity();
        bm.clear();
        assert_eq!(bm.nnz(), 0);
        assert!(bm.words.capacity() >= cap);
        // rebuild after clear starts from zeroed words
        bm.build_from_dense(&[0.0, 1.0, 0.0, 0.0], 2, 2).unwrap();
        assert_eq!(bm.nnz(), 1);
    }

    #[test]
    fn empty_operands_are_noops() {
        let mut bm = BitMatrix::new();
        bm.build_from_dense(&[], 0, 4).unwrap();
        let mut out: Vec<f32> = vec![];
        bm.matmul_into(&[0.0; 8], 2, &mut out);
        bm.build_from_dense(&[], 3, 0).unwrap();
        let mut out = vec![0.0f32; 6];
        bm.matmul_into(&[], 2, &mut out);
        assert_eq!(out, vec![0.0; 6]);
    }
}
