//! Softmax-family kernels used by the classifier head and the entropy-based
//! exit policy.

use crate::{Result, Tensor, TensorError};

/// Row-wise numerically-stable softmax of an `[m, n]` matrix.
///
/// Each row of the result sums to 1 (Eq. 6 of the paper).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices and
/// [`TensorError::InvalidArgument`] for zero-width rows.
///
/// # Example
///
/// ```
/// use dtsnn_tensor::{softmax_rows, Tensor};
/// # fn main() -> Result<(), dtsnn_tensor::TensorError> {
/// let logits = Tensor::from_vec(vec![0.0, 0.0, 1000.0, 1000.0], &[2, 2])?;
/// let p = softmax_rows(&logits)?;
/// assert!((p.data()[0] - 0.5).abs() < 1e-6);
/// assert!(p.data().iter().all(|v| v.is_finite()));
/// # Ok(())
/// # }
/// ```
pub fn softmax_rows(logits: &Tensor) -> Result<Tensor> {
    let (m, n) = mat_dims(logits)?;
    let mut out = logits.clone();
    let d = out.data_mut();
    for i in 0..m {
        let row = &mut d[i * n..(i + 1) * n];
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut z = 0.0;
        for v in row.iter_mut() {
            *v = (*v - mx).exp();
            z += *v;
        }
        for v in row.iter_mut() {
            *v /= z;
        }
    }
    Ok(out)
}

/// Row-wise log-softmax of an `[m, n]` matrix (stable: shifts by the row max
/// and subtracts `log Σ exp`).
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrices and
/// [`TensorError::InvalidArgument`] for zero-width rows.
pub fn log_softmax_rows(logits: &Tensor) -> Result<Tensor> {
    let (m, n) = mat_dims(logits)?;
    let mut out = logits.clone();
    let d = out.data_mut();
    for i in 0..m {
        let row = &mut d[i * n..(i + 1) * n];
        let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let logz = row.iter().map(|v| (*v - mx).exp()).sum::<f32>().ln() + mx;
        for v in row.iter_mut() {
            *v -= logz;
        }
    }
    Ok(out)
}

fn mat_dims(t: &Tensor) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: t.shape().rank() });
    }
    let (m, n) = (t.dims()[0], t.dims()[1]);
    if n == 0 {
        return Err(TensorError::InvalidArgument("softmax over zero classes".into()));
    }
    Ok((m, n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = TensorRng::seed_from(1);
        let x = Tensor::randn(&[5, 7], 0.0, 3.0, &mut rng);
        let p = softmax_rows(&x).unwrap();
        for i in 0..5 {
            let s: f32 = p.data()[i * 7..(i + 1) * 7].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1e4, 1e4 + 1.0], &[1, 2]).unwrap();
        let p = softmax_rows(&x).unwrap();
        assert!(p.data().iter().all(|v| v.is_finite()));
        assert!(p.data()[1] > p.data()[0]);
    }

    #[test]
    fn log_softmax_consistent_with_softmax() {
        let mut rng = TensorRng::seed_from(2);
        let x = Tensor::randn(&[3, 4], 0.0, 2.0, &mut rng);
        let p = softmax_rows(&x).unwrap();
        let lp = log_softmax_rows(&x).unwrap();
        for (a, b) in p.data().iter().zip(lp.data()) {
            assert!((a.ln() - b).abs() < 1e-5);
        }
    }

    #[test]
    fn uniform_logits_give_uniform_probs() {
        let x = Tensor::zeros(&[1, 10]);
        let p = softmax_rows(&x).unwrap();
        for &v in p.data() {
            assert!((v - 0.1).abs() < 1e-6);
        }
    }

    #[test]
    fn rank_validation() {
        let v = Tensor::zeros(&[3]);
        assert!(softmax_rows(&v).is_err());
        assert!(log_softmax_rows(&v).is_err());
    }
}
