//! Pluggable kernel-backend seam: per-operand dispatch between the dense,
//! CSR, bitset and quantized kernel families.
//!
//! Every matmul/conv entry point used to make a scalar decision — density
//! versus [`crate::sparse::density_threshold`]. This module replaces that
//! with a single [`BackendKind`] choice made from the operand's **measured
//! density and binarity** ([`crate::Tensor::spike_stats`]):
//!
//! | choice | condition (auto) | numerics |
//! |---|---|---|
//! | [`BackendKind::Dense`] | density above threshold | reference (conformance oracle) |
//! | [`BackendKind::Csr`] | sparse, non-binary | bitwise identical to dense |
//! | [`BackendKind::Bitset`] | sparse, binary | bitwise identical to dense |
//! | [`BackendKind::Quantized`] | layer opted in / forced | own goldens (grid snap) |
//!
//! The density threshold keeps its existing knobs (`DTSNN_SPARSE_THRESHOLD`
//! env, [`crate::sparse::with_density_threshold`] guard), so every
//! pre-existing golden and oracle sees the same dispatch *inputs* — only
//! the sparse branch now picks the bit-packed kernels for binary operands,
//! which is bitwise neutral by the [`crate::bitset`] argument.
//!
//! # Forcing a backend
//!
//! Tests and benches can pin the choice process-wide with [`set_backend`] /
//! [`with_backend`] or the `DTSNN_BACKEND` environment variable
//! (`dense|csr|bitset|quantized|auto`, read once, malformed values warn
//! once and fall back to auto). Forcing `bitset` on a non-binary operand
//! silently resolves to `csr` — the two are bitwise identical, so the
//! fallback can never change a result. Forcing `quantized` is honored at
//! the **layer** level (layers own the weight cache); the raw tensor entry
//! points resolve it to the auto rule since they have no quantized weights
//! to use.

use crate::conv::{conv2d_ws, conv2d_ws_quant};
use crate::quant::QuantizedWeights;
use crate::{sparse, Conv2dSpec, Result, Tensor, Workspace};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Default grid resolution for a forced quantized run when the layer was
/// not explicitly quantized (matches `imc::HardwareConfig::weight_bits`).
pub const DEFAULT_QUANT_BITS: u32 = 8;

/// The four kernel families a layer forward can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Cache-blocked dense f32 kernels — the conformance oracle.
    Dense,
    /// Event-driven CSR gather kernels ([`crate::SpikeMatrix`]).
    Csr,
    /// Bit-packed binary kernels ([`crate::BitMatrix`]).
    Bitset,
    /// Int8 weights with i32 accumulation ([`crate::QuantizedWeights`]).
    Quantized,
}

impl BackendKind {
    /// All kinds, in dispatch-preference order.
    pub const ALL: [BackendKind; 4] =
        [BackendKind::Dense, BackendKind::Csr, BackendKind::Bitset, BackendKind::Quantized];

    /// Stable lowercase name (used in trace contexts and bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Dense => "dense",
            BackendKind::Csr => "csr",
            BackendKind::Bitset => "bitset",
            BackendKind::Quantized => "quantized",
        }
    }

    fn to_index(self) -> usize {
        match self {
            BackendKind::Dense => 1,
            BackendKind::Csr => 2,
            BackendKind::Bitset => 3,
            BackendKind::Quantized => 4,
        }
    }

    fn from_index(i: usize) -> Option<BackendKind> {
        match i {
            1 => Some(BackendKind::Dense),
            2 => Some(BackendKind::Csr),
            3 => Some(BackendKind::Bitset),
            4 => Some(BackendKind::Quantized),
            _ => None,
        }
    }
}

// Packed override: 0 = none, otherwise BackendKind::to_index.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static ENV_BACKEND: OnceLock<Option<BackendKind>> = OnceLock::new();

/// Parses a `DTSNN_BACKEND` value. `Ok(None)` means explicit auto dispatch;
/// `Err(())` flags a malformed value for the caller to warn about.
pub(crate) fn parse_backend(raw: &str) -> std::result::Result<Option<BackendKind>, ()> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "" | "auto" => Ok(None),
        "dense" => Ok(Some(BackendKind::Dense)),
        "csr" | "sparse" => Ok(Some(BackendKind::Csr)),
        "bitset" => Ok(Some(BackendKind::Bitset)),
        "quantized" | "quant" | "int8" => Ok(Some(BackendKind::Quantized)),
        _ => Err(()),
    }
}

/// The forced backend, if any (process-wide override → `DTSNN_BACKEND`).
pub fn forced() -> Option<BackendKind> {
    let packed = OVERRIDE.load(Ordering::Relaxed);
    if packed != 0 {
        return BackendKind::from_index(packed);
    }
    *ENV_BACKEND.get_or_init(|| match std::env::var("DTSNN_BACKEND") {
        Ok(v) => match parse_backend(&v) {
            Ok(kind) => kind,
            Err(()) => {
                eprintln!(
                    "dtsnn: warning: DTSNN_BACKEND={v:?} is not one of \
                     dense|csr|bitset|quantized|auto; using auto dispatch"
                );
                None
            }
        },
        Err(_) => None,
    })
}

/// Installs a process-wide backend override; `None` restores auto/env
/// dispatch. Returns the previous override.
pub fn set_backend(kind: Option<BackendKind>) -> Option<BackendKind> {
    let packed = kind.map_or(0, BackendKind::to_index);
    BackendKind::from_index(OVERRIDE.swap(packed, Ordering::Relaxed))
}

/// Runs `f` with the backend pinned to `kind`, restoring the previous
/// override afterwards — the scoped guard tests and benches use to force a
/// whole forward pass down one kernel family.
pub fn with_backend<R>(kind: BackendKind, f: impl FnOnce() -> R) -> R {
    let prev = set_backend(Some(kind));
    let out = f();
    set_backend(prev);
    out
}

fn auto(density: f32, binary: bool) -> BackendKind {
    if density <= sparse::density_threshold() {
        if binary {
            BackendKind::Bitset
        } else {
            BackendKind::Csr
        }
    } else {
        BackendKind::Dense
    }
}

/// Backend choice for a raw kernel call on an operand with the given
/// measured density and binarity. Never returns
/// [`BackendKind::Quantized`] — a forced quantized run resolves to the
/// auto rule here because raw tensor ops carry no quantized weight cache;
/// a forced bitset run on a non-binary operand resolves to CSR (bitwise
/// identical).
pub fn choose_kernel(density: f32, binary: bool) -> BackendKind {
    match forced() {
        Some(BackendKind::Bitset) if !binary => BackendKind::Csr,
        Some(BackendKind::Quantized) | None => auto(density, binary),
        Some(kind) => kind,
    }
}

/// Backend choice for a layer forward: like [`choose_kernel`] but honors
/// [`BackendKind::Quantized`] — when forced, or when the layer has opted
/// into quantization (`quantized`) and nothing is forced.
pub fn choose_layer(density: f32, binary: bool, quantized: bool) -> BackendKind {
    match forced() {
        Some(BackendKind::Quantized) => BackendKind::Quantized,
        Some(BackendKind::Bitset) if !binary => BackendKind::Csr,
        Some(kind) => kind,
        None if quantized => BackendKind::Quantized,
        None => auto(density, binary),
    }
}

/// Object-safe facade over one kernel family. The trait exists for benches
/// and conformance harnesses that want to hold backends as values; the hot
/// layer paths dispatch on [`BackendKind`] directly and stay
/// allocation-free.
pub trait KernelBackend: Send + Sync {
    /// Which family this backend runs.
    fn kind(&self) -> BackendKind;

    /// `a[m,k] × b[k,n]` through this family's kernels.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`].
    fn matmul(&self, a: &Tensor, b: &Tensor) -> Result<Tensor>;

    /// `aᵀ[k,m] × b[k,n]` through this family's kernels.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul_tn`].
    fn matmul_tn(&self, a: &Tensor, b: &Tensor) -> Result<Tensor>;

    /// `a[m,k] × bᵀ[n,k]` through this family's kernels.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul_nt`].
    fn matmul_nt(&self, a: &Tensor, b: &Tensor) -> Result<Tensor>;

    /// Workspace-backed convolution forward through this family's kernels.
    ///
    /// # Errors
    ///
    /// Same conditions as [`crate::conv2d_ws`].
    fn conv2d_ws(
        &self,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: &Conv2dSpec,
        ws: &mut Workspace,
    ) -> Result<Tensor>;
}

/// Forces the f32 entry points down one family via the scoped override.
struct ForcedBackend(BackendKind);

impl KernelBackend for ForcedBackend {
    fn kind(&self) -> BackendKind {
        self.0
    }

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        with_backend(self.0, || a.matmul(b))
    }

    fn matmul_tn(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        with_backend(self.0, || a.matmul_tn(b))
    }

    fn matmul_nt(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        with_backend(self.0, || a.matmul_nt(b))
    }

    fn conv2d_ws(
        &self,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: &Conv2dSpec,
        ws: &mut Workspace,
    ) -> Result<Tensor> {
        with_backend(self.0, || conv2d_ws(input, weight, bias, spec, ws))
    }
}

/// Quantizes the weight operand on the fly at a fixed bit width. The
/// integer fast path covers the shapes where weights appear in `[n_out, k]`
/// layout (`matmul_nt`, conv); `matmul`/`matmul_tn` run the f32 kernels
/// over the on-grid dequantized weights, which carries the same quantized
/// semantics with per-term f32 rounding. Layers cache their
/// [`QuantizedWeights`] instead of re-quantizing per call.
struct QuantBackend {
    bits: u32,
}

impl KernelBackend for QuantBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Quantized
    }

    fn matmul(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let qw = QuantizedWeights::from_tensor(b, self.bits)?;
        a.matmul(qw.dequantized())
    }

    fn matmul_tn(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let qw = QuantizedWeights::from_tensor(b, self.bits)?;
        a.matmul_tn(qw.dequantized())
    }

    fn matmul_nt(&self, a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let qw = QuantizedWeights::from_tensor(b, self.bits)?;
        qw.matmul_nt(a)
    }

    fn conv2d_ws(
        &self,
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: &Conv2dSpec,
        ws: &mut Workspace,
    ) -> Result<Tensor> {
        let qw = QuantizedWeights::from_tensor(weight, self.bits)?;
        conv2d_ws_quant(input, &qw, bias, spec, ws)
    }
}

/// A boxed backend of the given kind ([`DEFAULT_QUANT_BITS`] for
/// quantized).
pub fn kernel_backend(kind: BackendKind) -> Box<dyn KernelBackend> {
    match kind {
        BackendKind::Quantized => Box::new(QuantBackend { bits: DEFAULT_QUANT_BITS }),
        other => Box::new(ForcedBackend(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parallel, TensorRng};
    use std::sync::Mutex;

    // Tests that mutate the process-wide override serialize on this lock.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    fn bits_of(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn parse_accepts_names_and_rejects_garbage() {
        assert_eq!(parse_backend("dense"), Ok(Some(BackendKind::Dense)));
        assert_eq!(parse_backend(" CSR "), Ok(Some(BackendKind::Csr)));
        assert_eq!(parse_backend("sparse"), Ok(Some(BackendKind::Csr)));
        assert_eq!(parse_backend("bitset"), Ok(Some(BackendKind::Bitset)));
        assert_eq!(parse_backend("int8"), Ok(Some(BackendKind::Quantized)));
        assert_eq!(parse_backend("auto"), Ok(None));
        assert_eq!(parse_backend(""), Ok(None));
        assert_eq!(parse_backend("fast"), Err(()));
        assert_eq!(parse_backend("0.5"), Err(()));
        assert_eq!(parse_backend("bit set"), Err(()));
    }

    #[test]
    fn override_guard_shadows_and_restores() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        assert_eq!(set_backend(None), None);
        with_backend(BackendKind::Bitset, || {
            assert_eq!(forced(), Some(BackendKind::Bitset));
            with_backend(BackendKind::Dense, || {
                assert_eq!(forced(), Some(BackendKind::Dense));
            });
            assert_eq!(forced(), Some(BackendKind::Bitset));
        });
        assert_eq!(set_backend(None), None);
    }

    #[test]
    fn auto_rule_follows_density_and_binarity() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        sparse::with_density_threshold(0.25, || {
            assert_eq!(choose_kernel(0.1, true), BackendKind::Bitset);
            assert_eq!(choose_kernel(0.1, false), BackendKind::Csr);
            assert_eq!(choose_kernel(0.9, true), BackendKind::Dense);
            assert_eq!(choose_kernel(0.9, false), BackendKind::Dense);
        });
    }

    #[test]
    fn forced_bitset_on_non_binary_falls_back_to_csr() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        with_backend(BackendKind::Bitset, || {
            assert_eq!(choose_kernel(0.9, true), BackendKind::Bitset);
            assert_eq!(choose_kernel(0.1, false), BackendKind::Csr);
            assert_eq!(choose_layer(0.1, false, false), BackendKind::Csr);
        });
    }

    #[test]
    fn quantized_is_layer_level_only() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        with_backend(BackendKind::Quantized, || {
            // raw kernels resolve to the auto rule…
            assert_eq!(choose_kernel(0.1, true), BackendKind::Bitset);
            assert_eq!(choose_kernel(0.9, false), BackendKind::Dense);
            // …layers honor the force
            assert_eq!(choose_layer(0.9, false, false), BackendKind::Quantized);
        });
        // opted-in layers quantize without a force
        assert_eq!(choose_layer(0.9, false, true), BackendKind::Quantized);
        assert_eq!(choose_layer(0.9, false, false), BackendKind::Dense);
    }

    #[test]
    fn trait_backends_agree_bitwise_except_quantized() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let mut rng = TensorRng::seed_from(301);
        let mut a = Tensor::zeros(&[18, 40]);
        for v in a.data_mut().iter_mut() {
            if rng.bernoulli(0.2) {
                *v = 1.0;
            }
        }
        let b = Tensor::randn(&[40, 11], 0.0, 1.0, &mut rng);
        let bt = Tensor::randn(&[11, 40], 0.0, 1.0, &mut rng);
        for threads in [1, 4] {
            parallel::with_threads(threads, || {
                let dense = kernel_backend(BackendKind::Dense);
                let want_mm = bits_of(&dense.matmul(&a, &b).unwrap());
                let want_nt = bits_of(&dense.matmul_nt(&a, &bt).unwrap());
                for kind in [BackendKind::Csr, BackendKind::Bitset] {
                    let be = kernel_backend(kind);
                    assert_eq!(be.kind(), kind);
                    assert_eq!(want_mm, bits_of(&be.matmul(&a, &b).unwrap()), "{kind:?} mm");
                    assert_eq!(want_nt, bits_of(&be.matmul_nt(&a, &bt).unwrap()), "{kind:?} nt");
                }
                // quantized: deterministic and reproducible, not bitwise-dense
                let qb = kernel_backend(BackendKind::Quantized);
                let q1 = bits_of(&qb.matmul_nt(&a, &bt).unwrap());
                let q2 = bits_of(&qb.matmul_nt(&a, &bt).unwrap());
                assert_eq!(q1, q2, "quantized must be reproducible");
            });
        }
    }
}
