use crate::TensorError;

/// An owned tensor shape: an ordered list of dimension extents.
///
/// Row-major (C order) throughout the workspace; images use `NCHW`.
///
/// # Example
///
/// ```
/// use dtsnn_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from a slice of extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }

    /// Total number of elements (product of extents; 1 for rank 0).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// The extents as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Extent of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.0[i]
    }

    /// Row-major strides, in elements.
    ///
    /// ```
    /// use dtsnn_tensor::Shape;
    /// assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
    /// ```
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] when the index rank differs and
    /// [`TensorError::InvalidArgument`] when a coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize, TensorError> {
        if index.len() != self.rank() {
            return Err(TensorError::RankMismatch { expected: self.rank(), actual: index.len() });
        }
        let mut off = 0;
        let strides = self.strides();
        for (d, (&i, &s)) in index.iter().zip(strides.iter()).enumerate() {
            if i >= self.0[d] {
                return Err(TensorError::InvalidArgument(format!(
                    "index {i} out of range for dim {d} of extent {}",
                    self.0[d]
                )));
            }
            off += i * s;
        }
        Ok(off)
    }

    /// Asserts this shape equals `other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when they differ.
    pub fn expect_eq(&self, other: &Shape) -> Result<(), TensorError> {
        if self != other {
            return Err(TensorError::ShapeMismatch {
                expected: self.0.clone(),
                actual: other.0.clone(),
            });
        }
        Ok(())
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn len_and_rank() {
        let s = Shape::new(&[4, 5]);
        assert_eq!(s.len(), 20);
        assert_eq!(s.rank(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn empty_shape_is_scalar_like() {
        let s = Shape::new(&[]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn zero_extent_is_empty() {
        assert!(Shape::new(&[3, 0, 2]).is_empty());
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[7]).strides(), vec![1]);
    }

    #[test]
    fn offset_math() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 1, 2]).unwrap(), 6);
    }

    #[test]
    fn offset_rejects_bad_rank_and_range() {
        let s = Shape::new(&[2, 3]);
        assert!(matches!(s.offset(&[1]), Err(TensorError::RankMismatch { .. })));
        assert!(matches!(s.offset(&[2, 0]), Err(TensorError::InvalidArgument(_))));
    }

    #[test]
    fn expect_eq_detects_mismatch() {
        let a = Shape::new(&[2, 2]);
        let b = Shape::new(&[4]);
        assert!(a.expect_eq(&a.clone()).is_ok());
        assert!(matches!(a.expect_eq(&b), Err(TensorError::ShapeMismatch { .. })));
    }
}
