//! Dense `f32` tensor math for the DT-SNN reproduction.
//!
//! This crate provides the minimal-but-complete numeric substrate the rest of
//! the workspace builds on: an owned, contiguous, row-major [`Tensor`] with
//! elementwise arithmetic, matrix multiplication, im2col-based 2-D
//! convolution, pooling, softmax and reduction kernels, and deterministic
//! random initialization.
//!
//! Everything is pure safe Rust and **deterministic (thread-count-invariant)**:
//! the hot kernels run on the scoped-thread pool in [`parallel`], but every
//! worker owns a disjoint slice of output rows so float accumulation order
//! never changes — results are bitwise identical whether `DTSNN_THREADS` is
//! `1` (exactly the old serial path) or any larger worker count, and exactly
//! reproducible across runs.
//!
//! Spike-shaped operands additionally dispatch through the pluggable
//! **kernel-backend seam** ([`backend`]): the matmul/conv entry points
//! measure operand density and binarity in one pass and pick between the
//! dense blocked kernels, event-driven CSR gathers over a [`SpikeMatrix`]
//! ([`sparse`]), and bit-packed word kernels over a [`BitMatrix`]
//! ([`bitset`]) — all three preserve the accumulation order, so results
//! stay bitwise identical whichever family runs. A fourth, **quantized**
//! family ([`QuantizedWeights`], [`quant`]) freezes weights onto the IMC
//! int8 grid with exact integer accumulation; it intentionally changes
//! numerics and carries its own golden traces. The [`Workspace`] arena
//! makes the Eval-mode timestep loop allocation-free after one warm-up
//! pass.
//!
//! # Example
//!
//! ```
//! use dtsnn_tensor::Tensor;
//!
//! # fn main() -> Result<(), dtsnn_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

// `deny` (not `forbid`) so the two layout/intrinsics modules — [`align`]
// and [`simd`] — can opt in with scoped `#[allow(unsafe_code)]`; everything
// else stays statically unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod backend;
pub mod bitset;
mod conv;
mod error;
mod linalg;
mod ops;
pub mod parallel;
mod pool;
pub mod quant;
mod rng;
mod shape;
pub mod simd;
pub mod sparse;
mod tensor;
mod workspace;

pub use align::{AlignedVec, AlignedWords};
pub use backend::{kernel_backend, BackendKind, KernelBackend};
pub use bitset::BitMatrix;
pub use conv::{
    col2im, conv2d, conv2d_backward, conv2d_ws, conv2d_ws_quant, conv2d_ws_with, im2col,
    Conv2dSpec,
};
pub use error::TensorError;
pub use linalg::{linear_ws, linear_ws_quant, linear_ws_with};
pub use ops::{log_softmax_rows, softmax_rows};
pub use pool::{avg_pool2d, avg_pool2d_backward, avg_pool2d_ws, global_avg_pool, PoolSpec};
pub use quant::QuantizedWeights;
pub use rng::TensorRng;
pub use shape::Shape;
pub use simd::SimdLevel;
pub use sparse::SpikeMatrix;
pub use tensor::Tensor;
pub use workspace::{Workspace, WorkspaceStats};

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
