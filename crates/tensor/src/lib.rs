//! Dense `f32` tensor math for the DT-SNN reproduction.
//!
//! This crate provides the minimal-but-complete numeric substrate the rest of
//! the workspace builds on: an owned, contiguous, row-major [`Tensor`] with
//! elementwise arithmetic, matrix multiplication, im2col-based 2-D
//! convolution, pooling, softmax and reduction kernels, and deterministic
//! random initialization.
//!
//! Everything is pure safe Rust and **deterministic (thread-count-invariant)**:
//! the hot kernels run on the scoped-thread pool in [`parallel`], but every
//! worker owns a disjoint slice of output rows so float accumulation order
//! never changes — results are bitwise identical whether `DTSNN_THREADS` is
//! `1` (exactly the old serial path) or any larger worker count, and exactly
//! reproducible across runs.
//!
//! Spike-shaped operands additionally take an **event-driven sparse path**
//! ([`sparse`]): the matmul/conv entry points measure operand density and
//! switch to gather-accumulate kernels over a [`SpikeMatrix`] below a
//! configurable threshold, preserving the accumulation order so dense and
//! sparse results stay bitwise identical. The [`Workspace`] arena makes the
//! Eval-mode timestep loop allocation-free after one warm-up pass.
//!
//! # Example
//!
//! ```
//! use dtsnn_tensor::Tensor;
//!
//! # fn main() -> Result<(), dtsnn_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod error;
mod linalg;
mod ops;
pub mod parallel;
mod pool;
mod rng;
mod shape;
pub mod sparse;
mod tensor;
mod workspace;

pub use conv::{col2im, conv2d, conv2d_backward, conv2d_ws, im2col, Conv2dSpec};
pub use error::TensorError;
pub use linalg::linear_ws;
pub use ops::{log_softmax_rows, softmax_rows};
pub use pool::{avg_pool2d, avg_pool2d_backward, avg_pool2d_ws, global_avg_pool, PoolSpec};
pub use rng::TensorRng;
pub use shape::Shape;
pub use sparse::SpikeMatrix;
pub use tensor::Tensor;
pub use workspace::{Workspace, WorkspaceStats};

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
