//! Dense `f32` tensor math for the DT-SNN reproduction.
//!
//! This crate provides the minimal-but-complete numeric substrate the rest of
//! the workspace builds on: an owned, contiguous, row-major [`Tensor`] with
//! elementwise arithmetic, matrix multiplication, im2col-based 2-D
//! convolution, pooling, softmax and reduction kernels, and deterministic
//! random initialization.
//!
//! Everything is pure safe Rust and **deterministic (thread-count-invariant)**:
//! the hot kernels run on the scoped-thread pool in [`parallel`], but every
//! worker owns a disjoint slice of output rows so float accumulation order
//! never changes — results are bitwise identical whether `DTSNN_THREADS` is
//! `1` (exactly the old serial path) or any larger worker count, and exactly
//! reproducible across runs.
//!
//! # Example
//!
//! ```
//! use dtsnn_tensor::Tensor;
//!
//! # fn main() -> Result<(), dtsnn_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b)?;
//! assert_eq!(c.data(), a.data());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conv;
mod error;
mod linalg;
mod ops;
pub mod parallel;
mod pool;
mod rng;
mod shape;
mod tensor;

pub use conv::{col2im, conv2d, conv2d_backward, im2col, Conv2dSpec};
pub use error::TensorError;
pub use ops::{log_softmax_rows, softmax_rows};
pub use pool::{avg_pool2d, avg_pool2d_backward, global_avg_pool, PoolSpec};
pub use rng::TensorRng;
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-local result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
