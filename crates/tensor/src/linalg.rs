//! Matrix multiplication kernels.
//!
//! Cache-blocked (i,k,j) loop ordering, row-partitioned across the
//! [`crate::parallel`] worker pool. Each worker owns a disjoint slice of
//! output rows and every output element accumulates over `k` in ascending
//! order regardless of blocking, so results are bitwise identical for any
//! `DTSNN_THREADS` value.
//!
//! Each public entry point measures the left operand's spike density and
//! binarity in one pass ([`crate::Tensor::spike_stats`]) and asks
//! [`crate::backend::choose_kernel`] which kernel family to run: dense
//! blocked f32, CSR gathers ([`crate::SpikeMatrix`]) for sparse non-binary
//! operands, or bit-packed word kernels ([`crate::BitMatrix`]) for sparse
//! binary ones. All three preserve the per-element accumulation order
//! exactly, so dispatch never changes a single output bit (see the `sparse`
//! and `bitset` module docs for the argument).

use crate::backend::{self, BackendKind};
use crate::quant::QuantizedWeights;
use crate::{parallel, simd, BitMatrix, Result, SpikeMatrix, Tensor, TensorError, Workspace};

/// K-dimension tile: one tile of `b` rows (`BLOCK_K × BLOCK_N` floats) stays
/// cache-hot across all output rows of a worker's chunk. Per output element
/// the tiles are visited in ascending order, so blocking is bitwise neutral.
const BLOCK_K: usize = 64;
/// N-dimension tile (floats): bounds the write window per pass.
const BLOCK_N: usize = 256;

/// Dense blocked `out[m,n] += a[m,k] × b[k,n]` over a zeroed output buffer.
/// Zero entries of `a` are skipped (bitwise neutral; a large win on spike
/// operands that stayed above the sparse-dispatch threshold).
pub(crate) fn matmul_dense(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    let work = m.saturating_mul(k).saturating_mul(n);
    let lvl = simd::level();
    parallel::for_each_row_chunk(out, n, m, work, |first_row, c| {
        for jb in (0..n).step_by(BLOCK_N) {
            let jend = (jb + BLOCK_N).min(n);
            for pb in (0..k).step_by(BLOCK_K) {
                let pend = (pb + BLOCK_K).min(k);
                for (local_i, crow) in c.chunks_mut(n).enumerate() {
                    let i = first_row + local_i;
                    let ctile = &mut crow[jb..jend];
                    for p in pb..pend {
                        let av = a[i * k + p];
                        if av == 0.0 {
                            continue;
                        }
                        let brow = &b[p * n + jb..p * n + jend];
                        simd::add_scaled_row(ctile, av, brow, lvl);
                    }
                }
            }
        }
    });
}

/// Dense blocked `out[m,n] += aᵀ × b` with `a` stored `[k, m]`. `p` stays
/// the loop over `a`'s rows; per output element the accumulation still
/// ascends over `p` exactly like a serial pass.
pub(crate) fn matmul_tn_dense(a: &[f32], k: usize, m: usize, b: &[f32], n: usize, out: &mut [f32]) {
    let work = m.saturating_mul(k).saturating_mul(n);
    let lvl = simd::level();
    parallel::for_each_row_chunk(out, n, m, work, |first_row, c| {
        let rows = c.len() / n;
        for jb in (0..n).step_by(BLOCK_N) {
            let jend = (jb + BLOCK_N).min(n);
            for pb in (0..k).step_by(BLOCK_K) {
                let pend = (pb + BLOCK_K).min(k);
                for p in pb..pend {
                    let arow = &a[p * m + first_row..p * m + first_row + rows];
                    let brow = &b[p * n + jb..p * n + jend];
                    for (local_i, &av) in arow.iter().enumerate() {
                        if av == 0.0 {
                            continue;
                        }
                        let ctile = &mut c[local_i * n + jb..local_i * n + jend];
                        simd::add_scaled_row(ctile, av, brow, lvl);
                    }
                }
            }
        }
    });
}

/// Dense `out[m,n] += a[m,k] × bᵀ` over a **zero-filled** `out`, with `b`
/// stored `[n, k]`. No per-element zero branch — sparsity is the dispatch
/// layer's job. The SIMD tiers tile over output columns with the partial
/// accumulator parked in `out` between k-tiles (an exact f32 store/load),
/// which is why the buffer must start zeroed; every caller passes a fresh
/// [`crate::Tensor::zeros`] or zero-filled [`crate::Workspace::take`]
/// buffer.
pub(crate) fn matmul_nt_dense(a: &[f32], m: usize, k: usize, b: &[f32], n: usize, out: &mut [f32]) {
    if m == 0 || n == 0 {
        return;
    }
    let work = m.saturating_mul(k).saturating_mul(n);
    let lvl = simd::level();
    parallel::for_each_row_chunk(out, n, m, work, |first_row, c| {
        simd::matmul_nt_chunk(a, k, first_row, c.len() / n, b, n, c, lvl);
    });
}

/// `c[rows, n] += bias[n]` broadcast over rows, row-partitioned.
pub(crate) fn add_bias_rows(c: &mut [f32], n: usize, rows: usize, b: &[f32]) {
    let work = rows.saturating_mul(n);
    let lvl = simd::level();
    parallel::for_each_row_chunk(c, n, rows, work, |_, chunk| {
        for crow in chunk.chunks_mut(n) {
            simd::add_row(crow, b, lvl);
        }
    });
}

impl Tensor {
    /// Matrix product `self[m,k] × rhs[k,n] → [m,n]`, with an event-driven
    /// sparse fast path when `self`'s density is at or below
    /// [`crate::sparse::density_threshold`] (bitwise identical to dense).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 2
    /// and [`TensorError::MatmulDims`] when inner dims disagree.
    ///
    /// # Example
    ///
    /// ```
    /// use dtsnn_tensor::Tensor;
    /// # fn main() -> Result<(), dtsnn_tensor::TensorError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&b)?.data(), &[19.0, 22.0, 43.0, 50.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self)?;
        let (k2, n) = mat_dims(rhs)?;
        if k != k2 {
            return Err(TensorError::MatmulDims { lhs_cols: k, rhs_rows: k2 });
        }
        let mut out = Tensor::zeros(&[m, n]);
        if m == 0 || n == 0 {
            return Ok(out);
        }
        let (density, binary) = self.spike_stats();
        match backend::choose_kernel(density, binary) {
            BackendKind::Csr => {
                let mut sm = SpikeMatrix::new();
                sm.build_from_dense(self.data(), m, k)?;
                sm.matmul_into(rhs.data(), n, out.data_mut());
            }
            BackendKind::Bitset => {
                let mut bm = BitMatrix::new();
                bm.build_from_dense(self.data(), m, k)?;
                bm.matmul_into(rhs.data(), n, out.data_mut());
            }
            // choose_kernel never yields Quantized; Dense is the reference
            _ => matmul_dense(self.data(), m, k, rhs.data(), n, out.data_mut()),
        }
        Ok(out)
    }

    /// `selfᵀ[k,m] × rhs[k,n] → [m,n]` without materializing the transpose,
    /// with the same density-dispatched sparse fast path as
    /// [`Tensor::matmul`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`], with `self` read as `[k, m]`.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        let (k, m) = mat_dims(self)?;
        let (k2, n) = mat_dims(rhs)?;
        if k != k2 {
            return Err(TensorError::MatmulDims { lhs_cols: m, rhs_rows: k2 });
        }
        let mut out = Tensor::zeros(&[m, n]);
        if m == 0 || n == 0 {
            return Ok(out);
        }
        let (density, binary) = self.spike_stats();
        match backend::choose_kernel(density, binary) {
            BackendKind::Csr => {
                let mut sm = SpikeMatrix::new();
                sm.build_transposed_from_dense(self.data(), k, m)?;
                sm.matmul_into(rhs.data(), n, out.data_mut());
            }
            BackendKind::Bitset => {
                let mut bm = BitMatrix::new();
                bm.build_transposed_from_dense(self.data(), k, m)?;
                bm.matmul_into(rhs.data(), n, out.data_mut());
            }
            _ => matmul_tn_dense(self.data(), k, m, rhs.data(), n, out.data_mut()),
        }
        Ok(out)
    }

    /// `self[m,k] × rhsᵀ[n,k] → [m,n]` without materializing the transpose,
    /// with the same density-dispatched sparse fast path as
    /// [`Tensor::matmul`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`], with `rhs` read as `[n, k]`.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self)?;
        let (n, k2) = mat_dims(rhs)?;
        if k != k2 {
            return Err(TensorError::MatmulDims { lhs_cols: k, rhs_rows: k2 });
        }
        let mut out = Tensor::zeros(&[m, n]);
        if m == 0 || n == 0 {
            return Ok(out);
        }
        let (density, binary) = self.spike_stats();
        match backend::choose_kernel(density, binary) {
            BackendKind::Csr => {
                let mut sm = SpikeMatrix::new();
                sm.build_from_dense(self.data(), m, k)?;
                sm.matmul_nt_into(rhs.data(), n, out.data_mut());
            }
            BackendKind::Bitset => {
                let mut bm = BitMatrix::new();
                bm.build_from_dense(self.data(), m, k)?;
                bm.matmul_nt_into(rhs.data(), n, out.data_mut());
            }
            _ => matmul_nt_dense(self.data(), m, k, rhs.data(), n, out.data_mut()),
        }
        Ok(out)
    }

    /// Adds a length-`n` bias vector to every row of an `[m, n]` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `bias` is not `[n]`.
    pub fn add_row_bias(&self, bias: &Tensor) -> Result<Tensor> {
        let (m, n) = mat_dims(self)?;
        if bias.dims() != [n] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![n],
                actual: bias.dims().to_vec(),
            });
        }
        let mut out = self.clone();
        add_bias_rows(out.data_mut(), n, m, bias.data());
        Ok(out)
    }

    /// Column-wise sum of an `[m, n]` matrix → `[n]` (bias gradients).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn sum_rows(&self) -> Result<Tensor> {
        let (m, n) = mat_dims(self)?;
        let mut out = Tensor::zeros(&[n]);
        let a = self.data();
        let o = out.data_mut();
        for i in 0..m {
            for j in 0..n {
                o[j] += a[i * n + j];
            }
        }
        Ok(out)
    }
}

/// Eval-mode fully-connected forward:
/// `input[m,k] × weightᵀ[n,k] + bias[n] → [m,n]`, with the output (and the
/// sparse build scratch) drawn from `ws` instead of fresh heap allocations.
/// Bitwise identical to `input.matmul_nt(weight)?.add_row_bias(bias)?`.
///
/// # Errors
///
/// Same conditions as [`Tensor::matmul_nt`] plus
/// [`TensorError::ShapeMismatch`] when `bias` is not `[n]`.
pub fn linear_ws(
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    ws: &mut Workspace,
) -> Result<Tensor> {
    let (density, binary) = input.spike_stats();
    linear_ws_with(backend::choose_kernel(density, binary), input, weight, bias, ws)
}

/// [`linear_ws`] with the kernel family fixed by the caller (layers pick it
/// once per forward via [`crate::backend::choose_layer`] so the choice can
/// be recorded). `kind` must be one of the f32 families; the bitset branch
/// additionally requires a binary input.
///
/// # Errors
///
/// Same conditions as [`linear_ws`], plus
/// [`TensorError::InvalidArgument`] for [`BackendKind::Quantized`] (which
/// needs a [`QuantizedWeights`] cache — use [`linear_ws_quant`]) or a
/// non-binary input forced down the bitset branch.
pub fn linear_ws_with(
    kind: BackendKind,
    input: &Tensor,
    weight: &Tensor,
    bias: &Tensor,
    ws: &mut Workspace,
) -> Result<Tensor> {
    let (m, k) = mat_dims(input)?;
    let (n, k2) = mat_dims(weight)?;
    if k != k2 {
        return Err(TensorError::MatmulDims { lhs_cols: k, rhs_rows: k2 });
    }
    if bias.dims() != [n] {
        return Err(TensorError::ShapeMismatch { expected: vec![n], actual: bias.dims().to_vec() });
    }
    let mut out = ws.take(m * n);
    if m > 0 && n > 0 {
        match kind {
            BackendKind::Csr => {
                let mut sm = ws.take_spike();
                sm.build_from_dense(input.data(), m, k)?;
                sm.matmul_nt_into(weight.data(), n, &mut out);
                ws.recycle_spike(sm);
            }
            BackendKind::Bitset => {
                let mut bm = ws.take_bits();
                bm.build_from_dense(input.data(), m, k)?;
                bm.matmul_nt_into(weight.data(), n, &mut out);
                ws.recycle_bits(bm);
            }
            BackendKind::Dense => {
                matmul_nt_dense(input.data(), m, k, weight.data(), n, &mut out);
            }
            BackendKind::Quantized => {
                return Err(TensorError::InvalidArgument(
                    "linear_ws_with cannot run the quantized backend; quantize the \
                     weights and call linear_ws_quant"
                        .into(),
                ));
            }
        }
        add_bias_rows(&mut out, n, m, bias.data());
    }
    Tensor::from_aligned(out, &[m, n])
}

/// Quantized fully-connected forward: for a binary input, an exact `i32`
/// accumulation of the weight codes over the active inputs with a single
/// rescale per output element (plus the f32 bias); for a non-binary input,
/// the ordinary [`linear_ws`] dispatch over the on-grid dequantized
/// weights. Deterministic and thread-count-invariant on both branches.
///
/// # Errors
///
/// Same conditions as [`linear_ws`].
pub fn linear_ws_quant(
    input: &Tensor,
    qw: &QuantizedWeights,
    bias: &Tensor,
    ws: &mut Workspace,
) -> Result<Tensor> {
    let (_, binary) = input.spike_stats();
    if !binary {
        return linear_ws(input, qw.dequantized(), bias, ws);
    }
    let (m, k) = mat_dims(input)?;
    let n = qw.rows();
    if k != qw.cols() {
        return Err(TensorError::MatmulDims { lhs_cols: k, rhs_rows: qw.cols() });
    }
    if bias.dims() != [n] {
        return Err(TensorError::ShapeMismatch { expected: vec![n], actual: bias.dims().to_vec() });
    }
    let mut out = ws.take(m * n);
    if m > 0 && n > 0 {
        let mut bm = ws.take_bits();
        bm.build_from_dense(input.data(), m, k)?;
        qw.matmul_nt_bits_into(&bm, &mut out);
        ws.recycle_bits(bm);
        add_bias_rows(&mut out, n, m, bias.data());
    }
    Tensor::from_aligned(out, &[m, n])
}

fn mat_dims(t: &Tensor) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: t.shape().rank() });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sparse, TensorRng};

    #[test]
    fn matmul_identity() {
        let mut rng = TensorRng::seed_from(1);
        let a = Tensor::randn(&[3, 3], 0.0, 1.0, &mut rng);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(a.matmul(&b), Err(TensorError::MatmulDims { .. })));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(a.matmul(&v), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = TensorRng::seed_from(2);
        let a = Tensor::randn(&[4, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[4, 5], 0.0, 1.0, &mut rng);
        let fast = a.matmul_tn(&b).unwrap();
        let slow = a.transpose2d().unwrap().matmul(&b).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = TensorRng::seed_from(3);
        let a = Tensor::randn(&[4, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[5, 3], 0.0, 1.0, &mut rng);
        let fast = a.matmul_nt(&b).unwrap();
        let slow = a.matmul(&b.transpose2d().unwrap()).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_nt_handles_sparse_spike_operands() {
        // Sparse spike-like lhs (takes the SpikeMatrix path under the
        // default threshold): must agree with the explicit-transpose product.
        let mut rng = TensorRng::seed_from(13);
        let mut a = Tensor::zeros(&[6, 9]);
        for v in a.data_mut().iter_mut() {
            if rng.bernoulli(0.2) {
                *v = 1.0;
            }
        }
        let b = Tensor::randn(&[4, 9], 0.0, 1.0, &mut rng);
        let fast = a.matmul_nt(&b).unwrap();
        let slow = a.matmul(&b.transpose2d().unwrap()).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn blocked_dense_kernels_match_naive_serial_loops_bitwise() {
        // Dimensions straddle both block boundaries (k > BLOCK_K,
        // n > BLOCK_N); ~half the lhs entries are zero to exercise the
        // skip. The naive (i,p,j) loop accumulates each element over p in
        // ascending order — blocking must reproduce it bit for bit.
        let mut rng = TensorRng::seed_from(55);
        let (m, k, n) = (13, 2 * BLOCK_K + 7, BLOCK_N + 44);
        let mut a = Tensor::randn(&[m, k], 0.0, 1.0, &mut rng);
        for v in a.data_mut().iter_mut() {
            if rng.bernoulli(0.5) {
                *v = 0.0;
            }
        }
        let b = Tensor::randn(&[k, n], 0.0, 1.0, &mut rng);
        let mut naive = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                let av = a.data()[i * k + p];
                for j in 0..n {
                    naive[i * n + j] += av * b.data()[p * n + j];
                }
            }
        }
        parallel::with_threads(1, || {
            sparse::with_density_threshold(-1.0, || {
                let blocked = a.matmul(&b).unwrap();
                let nb: Vec<u32> = naive.iter().map(|v| v.to_bits()).collect();
                let bb: Vec<u32> = blocked.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(nb, bb);
                // matmul_tn on the explicit transpose must agree bitwise too
                let at = a.transpose2d().unwrap();
                let tn = at.matmul_tn(&b).unwrap();
                let tb: Vec<u32> = tn.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(nb, tb);
            });
        });
    }

    #[test]
    fn kernels_are_thread_count_invariant() {
        let mut rng = TensorRng::seed_from(41);
        // Big enough to clear the parallel-work threshold.
        let a = Tensor::randn(&[64, 48], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[48, 56], 0.0, 1.0, &mut rng);
        let bt = Tensor::randn(&[56, 48], 0.0, 1.0, &mut rng);
        let at = Tensor::randn(&[48, 64], 0.0, 1.0, &mut rng);
        let serial = parallel::with_threads(1, || {
            (a.matmul(&b).unwrap(), at.matmul_tn(&b).unwrap(), a.matmul_nt(&bt).unwrap())
        });
        for threads in [2, 4, 7] {
            let par = parallel::with_threads(threads, || {
                (a.matmul(&b).unwrap(), at.matmul_tn(&b).unwrap(), a.matmul_nt(&bt).unwrap())
            });
            for (s, p) in [(&serial.0, &par.0), (&serial.1, &par.1), (&serial.2, &par.2)] {
                let sb: Vec<u32> = s.data().iter().map(|v| v.to_bits()).collect();
                let pb: Vec<u32> = p.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(sb, pb, "threads={threads}");
            }
        }
    }

    #[test]
    fn sparse_dense_linear_ws_matches_method_chain() {
        let mut rng = TensorRng::seed_from(61);
        let w = Tensor::randn(&[17, 40], 0.0, 0.5, &mut rng);
        let bias = Tensor::randn(&[17], 0.0, 0.1, &mut rng);
        for density in [0.05f32, 0.9] {
            let mut x = Tensor::zeros(&[3, 40]);
            for v in x.data_mut().iter_mut() {
                if rng.bernoulli(density) {
                    *v = 1.0;
                }
            }
            let want = x.matmul_nt(&w).unwrap().add_row_bias(&bias).unwrap();
            let mut ws = Workspace::new();
            for pass in 0..3 {
                let got = linear_ws(&x, &w, &bias, &mut ws).unwrap();
                let wb: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
                let gb: Vec<u32> = got.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(wb, gb, "density={density} pass={pass}");
                ws.recycle_tensor(got);
            }
        }
    }

    #[test]
    fn linear_ws_validates_shapes() {
        let mut ws = Workspace::new();
        let x = Tensor::zeros(&[2, 4]);
        let w = Tensor::zeros(&[3, 5]);
        assert!(linear_ws(&x, &w, &Tensor::zeros(&[3]), &mut ws).is_err());
        let w = Tensor::zeros(&[3, 4]);
        assert!(linear_ws(&x, &w, &Tensor::zeros(&[2]), &mut ws).is_err());
        assert!(linear_ws(&x, &w, &Tensor::zeros(&[3]), &mut ws).is_ok());
    }

    #[test]
    fn bias_and_row_sum_are_adjoint_shapes() {
        let x = Tensor::ones(&[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let y = x.add_row_bias(&b).unwrap();
        assert_eq!(y.data(), &[2.0, 3.0, 4.0, 2.0, 3.0, 4.0]);
        assert_eq!(y.sum_rows().unwrap().data(), &[4.0, 6.0, 8.0]);
        let bad = Tensor::zeros(&[4]);
        assert!(x.add_row_bias(&bad).is_err());
    }
}
