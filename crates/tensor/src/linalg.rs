//! Matrix multiplication kernels.
//!
//! Cache-friendly (i,k,j) loop ordering, row-partitioned across the
//! [`crate::parallel`] worker pool. Each worker owns a disjoint slice of
//! output rows, so every output element is accumulated in exactly the same
//! order as the serial loop — results are bitwise identical for any
//! `DTSNN_THREADS` value.

use crate::{parallel, Result, Tensor, TensorError};

impl Tensor {
    /// Matrix product `self[m,k] × rhs[k,n] → [m,n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 2
    /// and [`TensorError::MatmulDims`] when inner dims disagree.
    ///
    /// # Example
    ///
    /// ```
    /// use dtsnn_tensor::Tensor;
    /// # fn main() -> Result<(), dtsnn_tensor::TensorError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&b)?.data(), &[19.0, 22.0, 43.0, 50.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self)?;
        let (k2, n) = mat_dims(rhs)?;
        if k != k2 {
            return Err(TensorError::MatmulDims { lhs_cols: k, rhs_rows: k2 });
        }
        let mut out = Tensor::zeros(&[m, n]);
        if m == 0 || n == 0 {
            return Ok(out);
        }
        let a = self.data();
        let b = rhs.data();
        let work = m.saturating_mul(k).saturating_mul(n);
        parallel::for_each_row_chunk(out.data_mut(), n, m, work, |first_row, c| {
            for (local_i, crow) in c.chunks_mut(n).enumerate() {
                let i = first_row + local_i;
                for p in 0..k {
                    let av = a[i * k + p];
                    if av == 0.0 {
                        // Spike matrices are mostly zeros; skipping is a large win.
                        continue;
                    }
                    let brow = &b[p * n..(p + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        });
        Ok(out)
    }

    /// `selfᵀ[k,m] × rhs[k,n] → [m,n]` without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`], with `self` read as `[k, m]`.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        let (k, m) = mat_dims(self)?;
        let (k2, n) = mat_dims(rhs)?;
        if k != k2 {
            return Err(TensorError::MatmulDims { lhs_cols: m, rhs_rows: k2 });
        }
        let mut out = Tensor::zeros(&[m, n]);
        if m == 0 || n == 0 {
            return Ok(out);
        }
        let a = self.data();
        let b = rhs.data();
        let work = m.saturating_mul(k).saturating_mul(n);
        parallel::for_each_row_chunk(out.data_mut(), n, m, work, |first_row, c| {
            let rows = c.len() / n;
            // Keep p as the outer loop (row access of b); each output element
            // still accumulates over p in ascending order, exactly as a
            // single-threaded pass over all rows would.
            for p in 0..k {
                let arow = &a[p * m + first_row..p * m + first_row + rows];
                let brow = &b[p * n..(p + 1) * n];
                for (local_i, &av) in arow.iter().enumerate() {
                    if av == 0.0 {
                        continue;
                    }
                    let crow = &mut c[local_i * n..(local_i + 1) * n];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        });
        Ok(out)
    }

    /// `self[m,k] × rhsᵀ[n,k] → [m,n]` without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`], with `rhs` read as `[n, k]`.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self)?;
        let (n, k2) = mat_dims(rhs)?;
        if k != k2 {
            return Err(TensorError::MatmulDims { lhs_cols: k, rhs_rows: k2 });
        }
        let mut out = Tensor::zeros(&[m, n]);
        if m == 0 || n == 0 {
            return Ok(out);
        }
        let a = self.data();
        let b = rhs.data();
        let work = m.saturating_mul(k).saturating_mul(n);
        parallel::for_each_row_chunk(out.data_mut(), n, m, work, |first_row, c| {
            for (local_i, crow) in c.chunks_mut(n).enumerate() {
                let i = first_row + local_i;
                let arow = &a[i * k..(i + 1) * k];
                for (j, cv) in crow.iter_mut().enumerate() {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    for (&av, &bv) in arow.iter().zip(brow) {
                        if av == 0.0 {
                            // Spike operands are ~80% zeros; skip like the
                            // other two kernels do.
                            continue;
                        }
                        acc += av * bv;
                    }
                    *cv = acc;
                }
            }
        });
        Ok(out)
    }

    /// Adds a length-`n` bias vector to every row of an `[m, n]` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `bias` is not `[n]`.
    pub fn add_row_bias(&self, bias: &Tensor) -> Result<Tensor> {
        let (m, n) = mat_dims(self)?;
        if bias.dims() != [n] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![n],
                actual: bias.dims().to_vec(),
            });
        }
        let mut out = self.clone();
        let b = bias.data();
        let c = out.data_mut();
        for i in 0..m {
            for j in 0..n {
                c[i * n + j] += b[j];
            }
        }
        Ok(out)
    }

    /// Column-wise sum of an `[m, n]` matrix → `[n]` (bias gradients).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn sum_rows(&self) -> Result<Tensor> {
        let (m, n) = mat_dims(self)?;
        let mut out = Tensor::zeros(&[n]);
        let a = self.data();
        let o = out.data_mut();
        for i in 0..m {
            for j in 0..n {
                o[j] += a[i * n + j];
            }
        }
        Ok(out)
    }
}

fn mat_dims(t: &Tensor) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: t.shape().rank() });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;

    #[test]
    fn matmul_identity() {
        let mut rng = TensorRng::seed_from(1);
        let a = Tensor::randn(&[3, 3], 0.0, 1.0, &mut rng);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(a.matmul(&b), Err(TensorError::MatmulDims { .. })));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(a.matmul(&v), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = TensorRng::seed_from(2);
        let a = Tensor::randn(&[4, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[4, 5], 0.0, 1.0, &mut rng);
        let fast = a.matmul_tn(&b).unwrap();
        let slow = a.transpose2d().unwrap().matmul(&b).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = TensorRng::seed_from(3);
        let a = Tensor::randn(&[4, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[5, 3], 0.0, 1.0, &mut rng);
        let fast = a.matmul_nt(&b).unwrap();
        let slow = a.matmul(&b.transpose2d().unwrap()).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_nt_skips_zeros_without_changing_results() {
        // Sparse spike-like lhs: the zero-skip path must agree with the
        // explicit-transpose product on every element.
        let mut rng = TensorRng::seed_from(13);
        let mut a = Tensor::zeros(&[6, 9]);
        for v in a.data_mut().iter_mut() {
            if rng.bernoulli(0.2) {
                *v = 1.0;
            }
        }
        let b = Tensor::randn(&[4, 9], 0.0, 1.0, &mut rng);
        let fast = a.matmul_nt(&b).unwrap();
        let slow = a.matmul(&b.transpose2d().unwrap()).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn kernels_are_thread_count_invariant() {
        let mut rng = TensorRng::seed_from(41);
        // Big enough to clear the parallel-work threshold.
        let a = Tensor::randn(&[64, 48], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[48, 56], 0.0, 1.0, &mut rng);
        let bt = Tensor::randn(&[56, 48], 0.0, 1.0, &mut rng);
        let at = Tensor::randn(&[48, 64], 0.0, 1.0, &mut rng);
        let serial = parallel::with_threads(1, || {
            (a.matmul(&b).unwrap(), at.matmul_tn(&b).unwrap(), a.matmul_nt(&bt).unwrap())
        });
        for threads in [2, 4, 7] {
            let par = parallel::with_threads(threads, || {
                (a.matmul(&b).unwrap(), at.matmul_tn(&b).unwrap(), a.matmul_nt(&bt).unwrap())
            });
            for (s, p) in [(&serial.0, &par.0), (&serial.1, &par.1), (&serial.2, &par.2)] {
                let sb: Vec<u32> = s.data().iter().map(|v| v.to_bits()).collect();
                let pb: Vec<u32> = p.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(sb, pb, "threads={threads}");
            }
        }
    }

    #[test]
    fn bias_and_row_sum_are_adjoint_shapes() {
        let x = Tensor::ones(&[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let y = x.add_row_bias(&b).unwrap();
        assert_eq!(y.data(), &[2.0, 3.0, 4.0, 2.0, 3.0, 4.0]);
        assert_eq!(y.sum_rows().unwrap().data(), &[4.0, 6.0, 8.0]);
        let bad = Tensor::zeros(&[4]);
        assert!(x.add_row_bias(&bad).is_err());
    }
}
