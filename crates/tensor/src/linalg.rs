//! Matrix multiplication kernels.
//!
//! Straightforward cache-friendly (i,k,j) loop ordering; plenty for the
//! scaled-down networks this workspace trains, and deterministic.

use crate::{Result, Tensor, TensorError};

impl Tensor {
    /// Matrix product `self[m,k] × rhs[k,n] → [m,n]`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] unless both operands are rank 2
    /// and [`TensorError::MatmulDims`] when inner dims disagree.
    ///
    /// # Example
    ///
    /// ```
    /// use dtsnn_tensor::Tensor;
    /// # fn main() -> Result<(), dtsnn_tensor::TensorError> {
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
    /// assert_eq!(a.matmul(&b)?.data(), &[19.0, 22.0, 43.0, 50.0]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn matmul(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self)?;
        let (k2, n) = mat_dims(rhs)?;
        if k != k2 {
            return Err(TensorError::MatmulDims { lhs_cols: k, rhs_rows: k2 });
        }
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.data();
        let b = rhs.data();
        let c = out.data_mut();
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                if av == 0.0 {
                    // Spike matrices are mostly zeros; skipping is a large win.
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let crow = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
        Ok(out)
    }

    /// `selfᵀ[k,m] × rhs[k,n] → [m,n]` without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`], with `self` read as `[k, m]`.
    pub fn matmul_tn(&self, rhs: &Tensor) -> Result<Tensor> {
        let (k, m) = mat_dims(self)?;
        let (k2, n) = mat_dims(rhs)?;
        if k != k2 {
            return Err(TensorError::MatmulDims { lhs_cols: m, rhs_rows: k2 });
        }
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.data();
        let b = rhs.data();
        let c = out.data_mut();
        for p in 0..k {
            let arow = &a[p * m..(p + 1) * m];
            let brow = &b[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let crow = &mut c[i * n..(i + 1) * n];
                for (cv, &bv) in crow.iter_mut().zip(brow) {
                    *cv += av * bv;
                }
            }
        }
        Ok(out)
    }

    /// `self[m,k] × rhsᵀ[n,k] → [m,n]` without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Tensor::matmul`], with `rhs` read as `[n, k]`.
    pub fn matmul_nt(&self, rhs: &Tensor) -> Result<Tensor> {
        let (m, k) = mat_dims(self)?;
        let (n, k2) = mat_dims(rhs)?;
        if k != k2 {
            return Err(TensorError::MatmulDims { lhs_cols: k, rhs_rows: k2 });
        }
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.data();
        let b = rhs.data();
        let c = out.data_mut();
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&av, &bv) in arow.iter().zip(brow) {
                    acc += av * bv;
                }
                c[i * n + j] = acc;
            }
        }
        Ok(out)
    }

    /// Adds a length-`n` bias vector to every row of an `[m, n]` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when `bias` is not `[n]`.
    pub fn add_row_bias(&self, bias: &Tensor) -> Result<Tensor> {
        let (m, n) = mat_dims(self)?;
        if bias.dims() != [n] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![n],
                actual: bias.dims().to_vec(),
            });
        }
        let mut out = self.clone();
        let b = bias.data();
        let c = out.data_mut();
        for i in 0..m {
            for j in 0..n {
                c[i * n + j] += b[j];
            }
        }
        Ok(out)
    }

    /// Column-wise sum of an `[m, n]` matrix → `[n]` (bias gradients).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices.
    pub fn sum_rows(&self) -> Result<Tensor> {
        let (m, n) = mat_dims(self)?;
        let mut out = Tensor::zeros(&[n]);
        let a = self.data();
        let o = out.data_mut();
        for i in 0..m {
            for j in 0..n {
                o[j] += a[i * n + j];
            }
        }
        Ok(out)
    }
}

fn mat_dims(t: &Tensor) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: t.shape().rank() });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;

    #[test]
    fn matmul_identity() {
        let mut rng = TensorRng::seed_from(1);
        let a = Tensor::randn(&[3, 3], 0.0, 1.0, &mut rng);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i).unwrap(), a);
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Tensor::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(a.matmul(&b), Err(TensorError::MatmulDims { .. })));
        let v = Tensor::zeros(&[3]);
        assert!(matches!(a.matmul(&v), Err(TensorError::RankMismatch { .. })));
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let mut rng = TensorRng::seed_from(2);
        let a = Tensor::randn(&[4, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[4, 5], 0.0, 1.0, &mut rng);
        let fast = a.matmul_tn(&b).unwrap();
        let slow = a.transpose2d().unwrap().matmul(&b).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let mut rng = TensorRng::seed_from(3);
        let a = Tensor::randn(&[4, 3], 0.0, 1.0, &mut rng);
        let b = Tensor::randn(&[5, 3], 0.0, 1.0, &mut rng);
        let fast = a.matmul_nt(&b).unwrap();
        let slow = a.matmul(&b.transpose2d().unwrap()).unwrap();
        for (x, y) in fast.data().iter().zip(slow.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn bias_and_row_sum_are_adjoint_shapes() {
        let x = Tensor::ones(&[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let y = x.add_row_bias(&b).unwrap();
        assert_eq!(y.data(), &[2.0, 3.0, 4.0, 2.0, 3.0, 4.0]);
        assert_eq!(y.sum_rows().unwrap().data(), &[4.0, 6.0, 8.0]);
        let bad = Tensor::zeros(&[4]);
        assert!(x.add_row_bias(&bad).is_err());
    }
}
