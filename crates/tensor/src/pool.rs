//! Average pooling (the pooling used by the paper's spiking VGG/ResNet).

use crate::{Result, Tensor, TensorError, Workspace};

/// Geometry of a 2-D average pool (square window, no padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PoolSpec {
    /// Window extent (k×k).
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
}

impl PoolSpec {
    /// Creates a pool spec.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] for zero kernel or stride.
    pub fn new(kernel: usize, stride: usize) -> Result<Self> {
        if kernel == 0 || stride == 0 {
            return Err(TensorError::InvalidArgument("pool kernel and stride must be nonzero".into()));
        }
        Ok(PoolSpec { kernel, stride })
    }

    /// Output spatial extent for an `(h, w)` input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the window exceeds the input.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        if self.kernel > h || self.kernel > w {
            return Err(TensorError::InvalidGeometry(format!(
                "pool window {} exceeds input {h}x{w}",
                self.kernel
            )));
        }
        Ok(((h - self.kernel) / self.stride + 1, (w - self.kernel) / self.stride + 1))
    }
}

/// Average-pools `input` (`[n, c, h, w]`).
///
/// # Errors
///
/// Returns rank/geometry errors for malformed inputs.
pub fn avg_pool2d(input: &Tensor, spec: &PoolSpec) -> Result<Tensor> {
    let d = input.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: d.len() });
    }
    let [n, c, h, w] = [d[0], d[1], d[2], d[3]];
    let (oh, ow) = spec.output_hw(h, w)?;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    avg_pool2d_core(input.data(), [n, c, h, w], spec, oh, ow, out.data_mut());
    Ok(out)
}

/// Eval-mode average pool with the output drawn from `ws` — bitwise
/// identical to [`avg_pool2d`].
///
/// # Errors
///
/// Returns rank/geometry errors for malformed inputs.
pub fn avg_pool2d_ws(input: &Tensor, spec: &PoolSpec, ws: &mut Workspace) -> Result<Tensor> {
    let d = input.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: d.len() });
    }
    let [n, c, h, w] = [d[0], d[1], d[2], d[3]];
    let (oh, ow) = spec.output_hw(h, w)?;
    let mut out = ws.take(n * c * oh * ow);
    avg_pool2d_core(input.data(), [n, c, h, w], spec, oh, ow, &mut out);
    Tensor::from_aligned(out, &[n, c, oh, ow])
}

/// Core of [`avg_pool2d`]: writes every output element exactly once.
fn avg_pool2d_core(
    src: &[f32],
    [n, c, h, w]: [usize; 4],
    spec: &PoolSpec,
    oh: usize,
    ow: usize,
    dst: &mut [f32],
) {
    let k = spec.kernel;
    let inv = 1.0 / (k * k) as f32;
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let obase = (ni * c + ci) * oh * ow;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..k {
                        let row = base + (oy * spec.stride + ky) * w + ox * spec.stride;
                        for kx in 0..k {
                            acc += src[row + kx];
                        }
                    }
                    dst[obase + oy * ow + ox] = acc * inv;
                }
            }
        }
    }
}

/// Backward pass of [`avg_pool2d`]: spreads each upstream gradient uniformly
/// over its window.
///
/// # Errors
///
/// Returns rank/geometry errors for malformed inputs.
pub fn avg_pool2d_backward(
    grad_out: &Tensor,
    spec: &PoolSpec,
    input_hw: (usize, usize),
) -> Result<Tensor> {
    let d = grad_out.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: d.len() });
    }
    let [n, c, oh, ow] = [d[0], d[1], d[2], d[3]];
    let (h, w) = input_hw;
    let (eh, ew) = spec.output_hw(h, w)?;
    if (eh, ew) != (oh, ow) {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, c, eh, ew],
            actual: d.to_vec(),
        });
    }
    let k = spec.kernel;
    let inv = 1.0 / (k * k) as f32;
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let src = grad_out.data();
    let dst = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let obase = (ni * c + ci) * oh * ow;
            let base = (ni * c + ci) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = src[obase + oy * ow + ox] * inv;
                    for ky in 0..k {
                        let row = base + (oy * spec.stride + ky) * w + ox * spec.stride;
                        for kx in 0..k {
                            dst[row + kx] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Global average pool: `[n, c, h, w]` → `[n, c]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-4-D input.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    let d = input.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: d.len() });
    }
    let [n, c, h, w] = [d[0], d[1], d[2], d[3]];
    let inv = 1.0 / (h * w) as f32;
    let mut out = Tensor::zeros(&[n, c]);
    let src = input.data();
    let dst = out.data_mut();
    for ni in 0..n {
        for ci in 0..c {
            let base = (ni * c + ci) * h * w;
            let mut acc = 0.0;
            for p in 0..h * w {
                acc += src[base + p];
            }
            dst[ni * c + ci] = acc * inv;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;

    #[test]
    fn pool_known_values() {
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap();
        let spec = PoolSpec::new(2, 2).unwrap();
        let y = avg_pool2d(&x, &spec).unwrap();
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn pool_backward_conserves_gradient_mass() {
        let mut rng = TensorRng::seed_from(4);
        let spec = PoolSpec::new(2, 2).unwrap();
        let g = Tensor::randn(&[2, 3, 2, 2], 0.0, 1.0, &mut rng);
        let gx = avg_pool2d_backward(&g, &spec, (4, 4)).unwrap();
        assert!((gx.sum() - g.sum()).abs() < 1e-4);
    }

    #[test]
    fn pool_backward_matches_finite_difference() {
        let mut rng = TensorRng::seed_from(5);
        let spec = PoolSpec::new(2, 2).unwrap();
        let x = Tensor::randn(&[1, 1, 4, 4], 0.0, 1.0, &mut rng);
        let y = avg_pool2d(&x, &spec).unwrap();
        let gy = Tensor::ones(y.dims());
        let gx = avg_pool2d_backward(&gy, &spec, (4, 4)).unwrap();
        let eps = 1e-3;
        for idx in [0usize, 5, 10, 15] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let yp = avg_pool2d(&xp, &spec).unwrap();
            let num = (yp.sum() - y.sum()) / eps;
            assert!((num - gx.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn avg_pool2d_ws_matches_avg_pool2d_bitwise() {
        let mut rng = TensorRng::seed_from(6);
        let spec = PoolSpec::new(2, 2).unwrap();
        let x = Tensor::randn(&[2, 3, 6, 6], 0.0, 1.0, &mut rng);
        let want = avg_pool2d(&x, &spec).unwrap();
        let mut ws = Workspace::new();
        for _ in 0..2 {
            let got = avg_pool2d_ws(&x, &spec, &mut ws).unwrap();
            assert_eq!(got.dims(), want.dims());
            let wb: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
            let gb: Vec<u32> = got.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(wb, gb);
            ws.recycle_tensor(got);
        }
        assert!(avg_pool2d_ws(&Tensor::zeros(&[4]), &spec, &mut ws).is_err());
    }

    #[test]
    fn global_pool_averages_each_channel() {
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 2.0, 2.0, 2.0], &[1, 2, 2, 2])
            .unwrap();
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.dims(), &[1, 2]);
        assert_eq!(y.data(), &[4.0, 2.0]);
    }

    #[test]
    fn geometry_validation() {
        assert!(PoolSpec::new(0, 1).is_err());
        let spec = PoolSpec::new(5, 1).unwrap();
        let x = Tensor::zeros(&[1, 1, 4, 4]);
        assert!(avg_pool2d(&x, &spec).is_err());
        let g = Tensor::zeros(&[1, 1, 3, 3]);
        assert!(avg_pool2d_backward(&g, &PoolSpec::new(2, 2).unwrap(), (4, 4)).is_err());
    }
}
