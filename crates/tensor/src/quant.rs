//! Quantized int8 weight path on the IMC deployment grid.
//!
//! Crossbar-deployed weights live on a signed `weight_bits` grid: with
//! `scale = max |w|` and `levels = 2^(bits-1)`, every weight becomes an
//! integer code `q ∈ [-levels, levels-1]` times the step `Δ = scale/levels`.
//! [`QuantizedWeights`] caches those codes as `i8` plus the bitwise-exact
//! dequantized tensor, and its kernel exploits that binary spikes select a
//! **subset sum of integer codes**: each output element is an exact `i32`
//! accumulation of `q` over the active inputs followed by a *single* f32
//! rescale by `Δ` — one rounding step instead of one per term, the software
//! analogue of an ideal bit-serial crossbar read.
//!
//! # Semantics and determinism
//!
//! The quantized backend is **not** bitwise identical to dense f32 — the
//! grid snap is a real numeric change — so it carries its own golden traces
//! rather than riding the dense ones. It is still fully deterministic and
//! thread-count-invariant: integer accumulation is exact (order-free), the
//! rescale is a single f32 multiply, and non-binary operands fall back to
//! the ordinary f32 kernels over the dequantized (on-grid) weights, which
//! inherit the dense path's invariance.
//!
//! [`quantize_dequantize`] here is the same operation as
//! `dtsnn_imc::quantize_dequantize` (the imc crate delegates to this one),
//! so the PR 4 invariant holds by construction: the dequantized tensor is a
//! fixed point of the grid snap.

use crate::bitset::BitMatrix;
use crate::{parallel, simd, Result, Tensor, TensorError};

/// Quantize-then-dequantize one weight on the signed `weight_bits` grid
/// with full-scale magnitude `scale` (the ideal, noise-free deployment).
/// Returns `0.0` for a non-positive scale.
pub fn quantize_dequantize(w: f32, scale: f32, weight_bits: u32) -> f32 {
    if scale <= 0.0 {
        return 0.0;
    }
    let levels = 1i64 << (weight_bits - 1);
    let delta = scale / levels as f32;
    let q = ((w / delta).round() as i64).clamp(-levels, levels - 1);
    q as f32 * delta
}

/// A `[n_out, k]` weight matrix frozen onto the `weight_bits` grid: `i8`
/// codes for the integer fast path plus the exact dequantized tensor for
/// the f32 fallback. Built once per layer and invalidated whenever the
/// underlying weights change.
#[derive(Debug, Clone)]
pub struct QuantizedWeights {
    q: Vec<i8>,
    delta: f32,
    bits: u32,
    rows: usize,
    cols: usize,
    deq: Tensor,
}

impl QuantizedWeights {
    /// Quantizes a rank-2 `[n_out, k]` weight tensor onto the signed
    /// `bits` grid with `scale = max |w|`. The stored dequantized tensor is
    /// elementwise bitwise equal to [`quantize_dequantize`] of the input.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-matrices and
    /// [`TensorError::InvalidArgument`] for `bits` outside `2..=8` (codes
    /// must fit an `i8`).
    pub fn from_tensor(w: &Tensor, bits: u32) -> Result<Self> {
        if w.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: w.shape().rank() });
        }
        if !(2..=8).contains(&bits) {
            return Err(TensorError::InvalidArgument(format!(
                "quantized weight bits must be in 2..=8 to fit i8 codes, got {bits}"
            )));
        }
        let (rows, cols) = (w.dims()[0], w.dims()[1]);
        let scale = w.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let levels = 1i64 << (bits - 1);
        let delta = if scale <= 0.0 { 0.0 } else { scale / levels as f32 };
        let mut q = Vec::with_capacity(w.len());
        let mut deq = Vec::with_capacity(w.len());
        for &v in w.data() {
            if scale <= 0.0 {
                q.push(0);
                deq.push(0.0);
            } else {
                let code = ((v / delta).round() as i64).clamp(-levels, levels - 1);
                q.push(code as i8);
                deq.push(code as f32 * delta);
            }
        }
        let deq = Tensor::from_vec(deq, &[rows, cols])?;
        Ok(QuantizedWeights { q, delta, bits, rows, cols, deq })
    }

    /// Grid resolution used at build time.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Output-feature count (`n_out`).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Input-feature count (`k`).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Grid step `Δ = scale / 2^(bits-1)` (zero for an all-zero weight).
    pub fn delta(&self) -> f32 {
        self.delta
    }

    /// The on-grid f32 weights — elementwise bitwise equal to
    /// [`quantize_dequantize`] of the original tensor, and a fixed point of
    /// the grid snap (re-quantizing returns the same values).
    pub fn dequantized(&self) -> &Tensor {
        &self.deq
    }

    /// `a[m, k] × selfᵀ[n_out, k] → out[m, n_out]` for a bit-packed binary
    /// `a`: per output element an exact `i32` sum of the active codes, then
    /// one rescale by `Δ`. Row-partitioned; integer accumulation makes the
    /// result exactly thread-count-invariant. `out` is overwritten.
    pub fn matmul_nt_bits_into(&self, a: &BitMatrix, out: &mut [f32]) {
        debug_assert_eq!(a.cols(), self.cols);
        debug_assert_eq!(out.len(), a.rows() * self.rows);
        let n = self.rows;
        if a.rows() == 0 || n == 0 {
            return;
        }
        let k = self.cols;
        let work = a.nnz().saturating_mul(n);
        let lvl = simd::level();
        parallel::for_each_row_chunk(out, n, a.rows(), work, |first_row, c| {
            for (local_i, crow) in c.chunks_mut(n).enumerate() {
                let i = first_row + local_i;
                let words = a.row_words(i);
                for (j, cv) in crow.iter_mut().enumerate() {
                    let qrow = &self.q[j * k..(j + 1) * k];
                    // exact i32 sum of the active codes (integer adds are
                    // order-free, so the SIMD lane reduction is exact)
                    let acc = simd::quant_dot(words, qrow, lvl);
                    *cv = acc as f32 * self.delta;
                }
            }
        });
    }

    /// `a[m, k] × selfᵀ[n_out, k] → [m, n_out]` with quantized semantics:
    /// the integer fast path for a binary `a`, the f32 kernels over the
    /// on-grid dequantized weights otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for a non-matrix `a` and
    /// [`TensorError::MatmulDims`] when `a`'s columns disagree with `k`.
    pub fn matmul_nt(&self, a: &Tensor) -> Result<Tensor> {
        if a.shape().rank() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: a.shape().rank() });
        }
        let (m, k) = (a.dims()[0], a.dims()[1]);
        if k != self.cols {
            return Err(TensorError::MatmulDims { lhs_cols: k, rhs_rows: self.cols });
        }
        let (_, binary) = a.spike_stats();
        if !binary {
            return a.matmul_nt(&self.deq);
        }
        let mut out = Tensor::zeros(&[m, self.rows]);
        if m > 0 && self.rows > 0 {
            let mut bm = BitMatrix::new();
            bm.build_from_dense(a.data(), m, k)?;
            self.matmul_nt_bits_into(&bm, out.data_mut());
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;

    #[test]
    fn dequantized_matches_reference_grid_snap_bitwise() {
        let mut rng = TensorRng::seed_from(201);
        let w = Tensor::randn(&[7, 13], 0.0, 0.5, &mut rng);
        let scale = w.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        for bits in [2u32, 4, 8] {
            let qw = QuantizedWeights::from_tensor(&w, bits).unwrap();
            for (&orig, &snapped) in w.data().iter().zip(qw.dequantized().data()) {
                assert_eq!(
                    quantize_dequantize(orig, scale, bits).to_bits(),
                    snapped.to_bits(),
                    "bits={bits} w={orig}"
                );
            }
        }
    }

    #[test]
    fn dequantized_weights_are_a_fixed_point_of_the_grid() {
        // PR 4 invariant: unfaulted weights stay on-grid — re-snapping the
        // dequantized tensor on the *same* grid (same scale) changes
        // nothing. The scale must be held fixed: the positive extremum
        // clamps to `levels-1`, so re-deriving `max |w|` from the snapped
        // tensor would define a slightly different grid.
        let mut rng = TensorRng::seed_from(202);
        let w = Tensor::randn(&[5, 9], 0.0, 1.0, &mut rng);
        let scale = w.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        for bits in [2u32, 4, 8] {
            let qw = QuantizedWeights::from_tensor(&w, bits).unwrap();
            for &snapped in qw.dequantized().data() {
                let again = quantize_dequantize(snapped, scale, bits);
                assert_eq!(again.to_bits(), snapped.to_bits(), "bits={bits} v={snapped}");
            }
        }
    }

    #[test]
    fn integer_kernel_matches_naive_code_sums() {
        let mut rng = TensorRng::seed_from(203);
        let w = Tensor::randn(&[6, 40], 0.0, 0.5, &mut rng);
        let qw = QuantizedWeights::from_tensor(&w, 8).unwrap();
        let mut x = Tensor::zeros(&[9, 40]);
        for v in x.data_mut().iter_mut() {
            if rng.bernoulli(0.3) {
                *v = 1.0;
            }
        }
        let mut bm = BitMatrix::new();
        bm.build_from_dense(x.data(), 9, 40).unwrap();
        let mut out = vec![0.0f32; 9 * 6];
        qw.matmul_nt_bits_into(&bm, &mut out);
        for i in 0..9 {
            for j in 0..6 {
                let mut acc: i32 = 0;
                for p in 0..40 {
                    if x.data()[i * 40 + p] == 1.0 {
                        acc += i32::from(qw.q[j * 40 + p]);
                    }
                }
                let want = acc as f32 * qw.delta();
                assert_eq!(want.to_bits(), out[i * 6 + j].to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn integer_kernel_is_thread_count_invariant() {
        let mut rng = TensorRng::seed_from(204);
        let w = Tensor::randn(&[23, 130], 0.0, 0.5, &mut rng);
        let qw = QuantizedWeights::from_tensor(&w, 8).unwrap();
        let mut x = Tensor::zeros(&[41, 130]);
        for v in x.data_mut().iter_mut() {
            if rng.bernoulli(0.2) {
                *v = 1.0;
            }
        }
        let mut bm = BitMatrix::new();
        bm.build_from_dense(x.data(), 41, 130).unwrap();
        let run = || {
            let mut out = vec![0.0f32; 41 * 23];
            qw.matmul_nt_bits_into(&bm, &mut out);
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        };
        let serial = parallel::with_threads(1, run);
        for threads in [2, 4, 7] {
            assert_eq!(serial, parallel::with_threads(threads, run), "threads={threads}");
        }
    }

    #[test]
    fn rejects_bad_shapes_and_bit_widths() {
        let w = Tensor::zeros(&[4]);
        assert!(QuantizedWeights::from_tensor(&w, 8).is_err());
        let w = Tensor::zeros(&[2, 2]);
        assert!(QuantizedWeights::from_tensor(&w, 1).is_err());
        assert!(QuantizedWeights::from_tensor(&w, 9).is_err());
        // all-zero weights quantize to an all-zero grid
        let qw = QuantizedWeights::from_tensor(&w, 8).unwrap();
        assert_eq!(qw.delta(), 0.0);
        assert_eq!(qw.dequantized().data(), &[0.0; 4]);
    }
}
