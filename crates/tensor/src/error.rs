use std::fmt;

/// Errors produced by tensor operations.
///
/// Every fallible public function in this crate returns this type; it
/// implements [`std::error::Error`] so it composes with the error enums of
/// the higher-level crates.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Shape that was expected by the operation.
        expected: Vec<usize>,
        /// Shape that was actually supplied.
        actual: Vec<usize>,
    },
    /// The element count implied by a shape disagrees with the data length.
    LengthMismatch {
        /// Number of elements the shape requires.
        expected: usize,
        /// Number of elements supplied.
        actual: usize,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the supplied tensor.
        actual: usize,
    },
    /// Inner dimensions of a matrix product disagree.
    MatmulDims {
        /// Columns of the left operand.
        lhs_cols: usize,
        /// Rows of the right operand.
        rhs_rows: usize,
    },
    /// A convolution/pooling geometry is impossible (e.g. kernel larger than
    /// padded input).
    InvalidGeometry(String),
    /// A parameter was outside its documented domain.
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected:?}, got {actual:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(f, "length mismatch: shape requires {expected} elements, got {actual}")
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(f, "rank mismatch: expected rank {expected}, got rank {actual}")
            }
            TensorError::MatmulDims { lhs_cols, rhs_rows } => {
                write!(f, "matmul inner dims disagree: lhs has {lhs_cols} cols, rhs has {rhs_rows} rows")
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let errs: Vec<TensorError> = vec![
            TensorError::ShapeMismatch { expected: vec![2, 2], actual: vec![3] },
            TensorError::LengthMismatch { expected: 4, actual: 5 },
            TensorError::RankMismatch { expected: 2, actual: 4 },
            TensorError::MatmulDims { lhs_cols: 3, rhs_rows: 4 },
            TensorError::InvalidGeometry("kernel exceeds input".into()),
            TensorError::InvalidArgument("stride must be nonzero".into()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
