//! Event-driven sparse kernels over binary/ternary spike operands.
//!
//! Spiking activations are mostly zeros, so dense matrix kernels waste the
//! bulk of their inner-loop iterations. [`SpikeMatrix`] stores only the
//! active entries of an operand — per-row index lists in CSR form, built in
//! one scan like [`crate::Tensor::density`] — and its gather-accumulate
//! kernels touch exactly those entries. For binary operands (`val == 1.0`
//! everywhere) the multiply disappears entirely: `a[i,p] * b[p,:]`
//! degenerates to adding row `p` of `b`.
//!
//! # Bitwise equivalence with the dense path
//!
//! Every kernel here accumulates each output element over the active `p`
//! indices **in ascending order** — exactly the order the dense kernels in
//! [`crate::Tensor::matmul`] et al. visit them after their own `== 0.0`
//! skip. Skipping a zero term is itself bitwise neutral: accumulators start
//! at `+0.0`, `+0.0 + ±0.0 == +0.0`, and adding `±0.0` to a nonzero value
//! changes nothing, so for finite operands the sparse and dense paths return
//! **bitwise identical** results. The conformance goldens and fuzz oracle 8
//! pin this.
//!
//! # Density-threshold dispatch
//!
//! The dense entry points measure operand density and switch to the sparse
//! path when it is at or below [`density_threshold`]. The threshold comes
//! from, in priority order: a process-wide override
//! ([`set_density_threshold`] / [`with_density_threshold`]), the
//! `DTSNN_SPARSE_THRESHOLD` environment variable (read once), or
//! [`DEFAULT_DENSITY_THRESHOLD`]. `-1.0` forces the dense path and `1.0`
//! forces the sparse path — useful for benches and equivalence tests; since
//! the two paths agree bitwise, flipping the knob concurrently cannot change
//! any numeric output.

use crate::{parallel, simd, Conv2dSpec, Result, Tensor, TensorError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Default spike-density cutoff at or below which the sparse path runs.
///
/// Break-even sits well above this: the gather kernel does `nnz` row-adds
/// versus `k` fused multiply-rows for dense, so sparse wins whenever most
/// entries are zero. `0.25` leaves margin for the build scan.
pub const DEFAULT_DENSITY_THRESHOLD: f32 = 0.25;

// Packed override: 0 = none, otherwise `f32::to_bits(threshold) as u64 + 1`.
static OVERRIDE: AtomicU64 = AtomicU64::new(0);
static ENV_THRESHOLD: OnceLock<Option<f32>> = OnceLock::new();

fn clamp_threshold(t: f32) -> f32 {
    if t.is_nan() {
        DEFAULT_DENSITY_THRESHOLD
    } else {
        t.clamp(-1.0, 1.0)
    }
}

/// Parses a `DTSNN_SPARSE_THRESHOLD` value; `None` flags a malformed
/// string (the caller warns and falls back to the default).
pub(crate) fn parse_threshold(raw: &str) -> Option<f32> {
    raw.trim().parse::<f32>().ok()
}

/// The active sparse-dispatch density threshold (override → env → default).
pub fn density_threshold() -> f32 {
    let packed = OVERRIDE.load(Ordering::Relaxed);
    if packed != 0 {
        return f32::from_bits((packed - 1) as u32);
    }
    ENV_THRESHOLD
        .get_or_init(|| match std::env::var("DTSNN_SPARSE_THRESHOLD") {
            Ok(v) => match parse_threshold(&v) {
                Some(t) => Some(clamp_threshold(t)),
                None => {
                    // OnceLock init runs at most once, so this warning
                    // cannot repeat per process.
                    eprintln!(
                        "dtsnn: warning: DTSNN_SPARSE_THRESHOLD={v:?} is not a number; \
                         using the default threshold {DEFAULT_DENSITY_THRESHOLD}"
                    );
                    None
                }
            },
            Err(_) => None,
        })
        .unwrap_or(DEFAULT_DENSITY_THRESHOLD)
}

/// Installs a process-wide threshold override (clamped to `[-1.0, 1.0]`);
/// `None` restores the environment/default value. Returns the previous
/// override.
pub fn set_density_threshold(t: Option<f32>) -> Option<f32> {
    let packed = t.map_or(0, |v| u64::from(clamp_threshold(v).to_bits()) + 1);
    let prev = OVERRIDE.swap(packed, Ordering::Relaxed);
    if prev == 0 {
        None
    } else {
        Some(f32::from_bits((prev - 1) as u32))
    }
}

/// Runs `f` with the dispatch threshold pinned to `t`, restoring the
/// previous override afterwards. `-1.0` forces dense, `1.0` forces sparse.
pub fn with_density_threshold<R>(t: f32, f: impl FnOnce() -> R) -> R {
    let prev = set_density_threshold(Some(t));
    let out = f();
    set_density_threshold(prev);
    out
}

/// CSR list of the active (nonzero) entries of a spike operand.
///
/// Row `i`'s entries live at `idx[row_ptr[i]..row_ptr[i+1]]` (column
/// indices, ascending) with matching coefficients in `val`. When every
/// stored coefficient is exactly `1.0` the matrix is flagged `binary` and
/// the kernels drop the multiply. The buffers are retained across
/// [`SpikeMatrix::clear`]/rebuild cycles, so a matrix parked in a
/// [`crate::Workspace`] costs no steady-state allocations.
#[derive(Debug, Clone, Default)]
pub struct SpikeMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    idx: Vec<u32>,
    val: Vec<f32>,
    binary: bool,
}

impl SpikeMatrix {
    /// An empty matrix with no retained capacity.
    pub fn new() -> Self {
        SpikeMatrix::default()
    }

    /// Logical row count of the last build.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Logical column count of the last build.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored (active) entries.
    pub fn nnz(&self) -> usize {
        self.idx.len()
    }

    /// Whether every stored coefficient is exactly `1.0`.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Empties the matrix, keeping allocated capacity for the next build.
    pub fn clear(&mut self) {
        self.rows = 0;
        self.cols = 0;
        self.row_ptr.clear();
        self.idx.clear();
        self.val.clear();
        self.binary = true;
    }

    fn check_cols(cols: usize) -> Result<()> {
        if cols > u32::MAX as usize {
            return Err(TensorError::InvalidArgument(format!(
                "SpikeMatrix column count {cols} exceeds u32 index range"
            )));
        }
        Ok(())
    }

    /// Rebuilds from a dense row-major `[rows, cols]` buffer in one pass.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the buffer length
    /// disagrees and [`TensorError::InvalidArgument`] when `cols` overflows
    /// the `u32` index range.
    pub fn build_from_dense(&mut self, a: &[f32], rows: usize, cols: usize) -> Result<()> {
        if a.len() != rows * cols {
            return Err(TensorError::LengthMismatch { expected: rows * cols, actual: a.len() });
        }
        Self::check_cols(cols)?;
        self.clear();
        self.rows = rows;
        self.cols = cols;
        self.row_ptr.reserve(rows + 1);
        self.row_ptr.push(0);
        for row in a.chunks(cols.max(1)).take(rows) {
            for (j, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    self.idx.push(j as u32);
                    self.val.push(v);
                    self.binary &= v == 1.0;
                }
            }
            self.row_ptr.push(self.idx.len());
        }
        Ok(())
    }

    /// Rebuilds as the transpose of a dense `[k, m]` buffer: logical shape
    /// `[m, k]`, so [`SpikeMatrix::matmul_into`] computes `aᵀ × b` — the
    /// sparse counterpart of [`crate::Tensor::matmul_tn`]. Two passes
    /// (count, fill); each row's indices come out ascending because the fill
    /// scans `p` in ascending order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the buffer length
    /// disagrees and [`TensorError::InvalidArgument`] when `k` overflows the
    /// `u32` index range.
    pub fn build_transposed_from_dense(&mut self, a: &[f32], k: usize, m: usize) -> Result<()> {
        if a.len() != k * m {
            return Err(TensorError::LengthMismatch { expected: k * m, actual: a.len() });
        }
        Self::check_cols(k)?;
        self.clear();
        self.rows = m;
        self.cols = k;
        let mut counts = vec![0usize; m];
        for row in a.chunks(m.max(1)).take(k) {
            for (i, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    counts[i] += 1;
                }
            }
        }
        self.row_ptr.reserve(m + 1);
        self.row_ptr.push(0);
        let mut total = 0usize;
        for &c in &counts {
            total += c;
            self.row_ptr.push(total);
        }
        self.idx.resize(total, 0);
        self.val.resize(total, 0.0);
        let mut cursor: Vec<usize> = self.row_ptr[..m].to_vec();
        for (p, row) in a.chunks(m.max(1)).take(k).enumerate() {
            for (i, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    let pos = cursor[i];
                    cursor[i] += 1;
                    self.idx[pos] = p as u32;
                    self.val[pos] = v;
                    self.binary &= v == 1.0;
                }
            }
        }
        Ok(())
    }

    /// Rebuilds as the im2col unfolding of `input` (`[n, c, h, w]`),
    /// emitting **only active patch entries** — the dense `[n*oh*ow, c*k*k]`
    /// column matrix is never materialized. Indices follow the same
    /// `(ci, ky, kx)` scan as [`crate::im2col`], so they ascend within each
    /// row and the downstream accumulation order matches the dense path
    /// exactly. The build is single-threaded; it is a linear scan of the
    /// input and is dwarfed by the matmul it feeds.
    ///
    /// # Errors
    ///
    /// Returns the same shape/geometry errors as [`crate::im2col`].
    pub fn build_from_im2col(&mut self, input: &Tensor, spec: &Conv2dSpec) -> Result<()> {
        let d = input.dims();
        if d.len() != 4 {
            return Err(TensorError::RankMismatch { expected: 4, actual: d.len() });
        }
        let [n, c, h, w] = [d[0], d[1], d[2], d[3]];
        if c != spec.in_channels {
            return Err(TensorError::ShapeMismatch {
                expected: vec![n, spec.in_channels, h, w],
                actual: d.to_vec(),
            });
        }
        let (oh, ow) = spec.output_hw(h, w)?;
        let k = spec.kernel;
        let pl = spec.patch_len();
        Self::check_cols(pl)?;
        self.clear();
        self.rows = n * oh * ow;
        self.cols = pl;
        self.row_ptr.reserve(self.rows + 1);
        self.row_ptr.push(0);
        let src = input.data();
        let pad = spec.padding as isize;
        for flat in 0..self.rows {
            let ox = flat % ow;
            let oy = (flat / ow) % oh;
            let ni = flat / (ow * oh);
            let iy0 = (oy * spec.stride) as isize - pad;
            let ix0 = (ox * spec.stride) as isize - pad;
            for ci in 0..c {
                let cbase = (ni * c + ci) * h * w;
                for ky in 0..k {
                    let iy = iy0 + ky as isize;
                    if iy < 0 || iy >= h as isize {
                        continue; // padding taps are zero — never emitted
                    }
                    let srow = cbase + iy as usize * w;
                    let drow = (ci * k + ky) * k;
                    for kx in 0..k {
                        let ix = ix0 + kx as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        let v = src[srow + ix as usize];
                        if v != 0.0 {
                            self.idx.push((drow + kx) as u32);
                            self.val.push(v);
                            self.binary &= v == 1.0;
                        }
                    }
                }
            }
            self.row_ptr.push(self.idx.len());
        }
        Ok(())
    }

    /// `self[rows, cols] × b[cols, n] → out[rows, n]`, accumulating into
    /// `out` (callers pass a zero-filled buffer). Row-partitioned across the
    /// [`crate::parallel`] pool; per-element accumulation visits the active
    /// `p` indices in ascending order, exactly like the dense kernel's
    /// zero-skip loop, so results are bitwise identical to it for any
    /// thread count. For binary operands each active entry is a plain row
    /// add.
    pub fn matmul_into(&self, b: &[f32], n: usize, out: &mut [f32]) {
        debug_assert_eq!(b.len(), self.cols * n);
        debug_assert_eq!(out.len(), self.rows * n);
        if self.rows == 0 || n == 0 {
            return;
        }
        let work = self.nnz().saturating_mul(n);
        let lvl = simd::level();
        parallel::for_each_row_chunk(out, n, self.rows, work, |first_row, c| {
            for (local_i, crow) in c.chunks_mut(n).enumerate() {
                let i = first_row + local_i;
                let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
                // the gather over irregular `p` stays scalar; the contiguous
                // dense-row accumulate per active entry is vectorized
                if self.binary {
                    for &p in &self.idx[lo..hi] {
                        let brow = &b[p as usize * n..p as usize * n + n];
                        simd::add_row(crow, brow, lvl);
                    }
                } else {
                    for (&p, &av) in self.idx[lo..hi].iter().zip(&self.val[lo..hi]) {
                        let brow = &b[p as usize * n..p as usize * n + n];
                        simd::add_scaled_row(crow, av, brow, lvl);
                    }
                }
            }
        });
    }

    /// `self[rows, cols] × bᵀ → out[rows, n]` where `b` is row-major
    /// `[n, cols]` — the sparse counterpart of [`crate::Tensor::matmul_nt`].
    /// Each output element is a gathered dot product over the row's active
    /// indices in ascending order (bitwise identical to the dense
    /// accumulation, which adds only `±0.0` for the skipped terms).
    pub fn matmul_nt_into(&self, b: &[f32], n: usize, out: &mut [f32]) {
        debug_assert_eq!(b.len(), self.cols * n);
        debug_assert_eq!(out.len(), self.rows * n);
        if self.rows == 0 || n == 0 {
            return;
        }
        let k = self.cols;
        let work = self.nnz().saturating_mul(n);
        parallel::for_each_row_chunk(out, n, self.rows, work, |first_row, c| {
            for (local_i, crow) in c.chunks_mut(n).enumerate() {
                let i = first_row + local_i;
                let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
                let (irow, vrow) = (&self.idx[lo..hi], &self.val[lo..hi]);
                for (j, cv) in crow.iter_mut().enumerate() {
                    let brow = &b[j * k..(j + 1) * k];
                    let mut acc = 0.0;
                    if self.binary {
                        for &p in irow {
                            acc += brow[p as usize];
                        }
                    } else {
                        for (&p, &av) in irow.iter().zip(vrow) {
                            acc += av * brow[p as usize];
                        }
                    }
                    *cv = acc;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TensorRng;

    fn bits(t: &Tensor) -> Vec<u32> {
        t.data().iter().map(|v| v.to_bits()).collect()
    }

    /// Random operand of the given kind: binary spikes, ternary (±1), or
    /// fully dense floats.
    fn operand(dims: &[usize], kind: &str, density: f32, rng: &mut TensorRng) -> Tensor {
        let mut t = Tensor::zeros(dims);
        for v in t.data_mut().iter_mut() {
            match kind {
                "binary" => {
                    if rng.bernoulli(density) {
                        *v = 1.0;
                    }
                }
                "ternary" => {
                    if rng.bernoulli(density) {
                        *v = if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
                    }
                }
                _ => *v = rng.uniform(-1.0, 1.0),
            }
        }
        t
    }

    #[test]
    fn build_from_dense_lists_active_entries_in_order() {
        let a = Tensor::from_vec(vec![0.0, 2.0, 0.0, 1.0, 0.0, 1.0], &[2, 3]).unwrap();
        let mut sm = SpikeMatrix::new();
        sm.build_from_dense(a.data(), 2, 3).unwrap();
        assert_eq!(sm.rows(), 2);
        assert_eq!(sm.cols(), 3);
        assert_eq!(sm.nnz(), 3);
        assert!(!sm.is_binary()); // the 2.0 breaks binarity
        assert_eq!(sm.row_ptr, vec![0, 1, 3]);
        assert_eq!(sm.idx, vec![1, 0, 2]);
        assert_eq!(sm.val, vec![2.0, 1.0, 1.0]);
        sm.build_from_dense(&[1.0, 0.0, 0.0, 1.0], 2, 2).unwrap();
        assert!(sm.is_binary());
        assert!(sm.build_from_dense(&[1.0], 2, 3).is_err());
    }

    #[test]
    fn threshold_override_roundtrip() {
        // NaN falls back to the default; out-of-range values clamp.
        assert_eq!(clamp_threshold(f32::NAN), DEFAULT_DENSITY_THRESHOLD);
        assert_eq!(clamp_threshold(5.0), 1.0);
        assert_eq!(clamp_threshold(-5.0), -1.0);
        with_density_threshold(0.5, || {
            assert_eq!(density_threshold(), 0.5);
            // nested override shadows and restores
            with_density_threshold(-1.0, || assert_eq!(density_threshold(), -1.0));
            assert_eq!(density_threshold(), 0.5);
        });
    }

    #[test]
    fn malformed_thresholds_are_rejected_by_the_parser() {
        // density_threshold() reads the env exactly once per process, so the
        // malformed-input behavior is pinned at the parser seam: `None`
        // means "warn and fall back to DEFAULT_DENSITY_THRESHOLD".
        for bad in ["abc", "", "  ", "0.1.2", "25%", "0,25", "half"] {
            assert_eq!(parse_threshold(bad), None, "{bad:?} must be rejected");
        }
        assert_eq!(parse_threshold("0.5"), Some(0.5));
        assert_eq!(parse_threshold("  -1 "), Some(-1.0));
        // NaN parses but clamps back to the default downstream
        assert_eq!(parse_threshold("NaN").map(clamp_threshold), Some(DEFAULT_DENSITY_THRESHOLD));
    }

    #[test]
    fn sparse_dense_matmul_bitwise_identical() {
        let mut rng = TensorRng::seed_from(71);
        for kind in ["binary", "ternary", "dense"] {
            let a = operand(&[33, 40], kind, 0.15, &mut rng);
            let b = Tensor::randn(&[40, 21], 0.0, 1.0, &mut rng);
            for threads in [1, 4] {
                parallel::with_threads(threads, || {
                    let dense = with_density_threshold(-1.0, || a.matmul(&b).unwrap());
                    let sparse = with_density_threshold(1.0, || a.matmul(&b).unwrap());
                    assert_eq!(bits(&dense), bits(&sparse), "{kind} threads={threads}");
                });
            }
        }
    }

    #[test]
    fn sparse_dense_matmul_tn_bitwise_identical() {
        let mut rng = TensorRng::seed_from(72);
        for kind in ["binary", "ternary", "dense"] {
            let a = operand(&[40, 33], kind, 0.15, &mut rng); // read as [k, m]
            let b = Tensor::randn(&[40, 21], 0.0, 1.0, &mut rng);
            for threads in [1, 4] {
                parallel::with_threads(threads, || {
                    let dense = with_density_threshold(-1.0, || a.matmul_tn(&b).unwrap());
                    let sparse = with_density_threshold(1.0, || a.matmul_tn(&b).unwrap());
                    assert_eq!(bits(&dense), bits(&sparse), "{kind} threads={threads}");
                });
            }
        }
    }

    #[test]
    fn sparse_dense_matmul_nt_bitwise_identical() {
        let mut rng = TensorRng::seed_from(73);
        for kind in ["binary", "ternary", "dense"] {
            let a = operand(&[33, 40], kind, 0.15, &mut rng);
            let b = Tensor::randn(&[21, 40], 0.0, 1.0, &mut rng); // read as [n, k]
            for threads in [1, 4] {
                parallel::with_threads(threads, || {
                    let dense = with_density_threshold(-1.0, || a.matmul_nt(&b).unwrap());
                    let sparse = with_density_threshold(1.0, || a.matmul_nt(&b).unwrap());
                    assert_eq!(bits(&dense), bits(&sparse), "{kind} threads={threads}");
                });
            }
        }
    }

    #[test]
    fn sparse_dense_transposed_build_matches_explicit_transpose() {
        let mut rng = TensorRng::seed_from(74);
        let a = operand(&[12, 9], "ternary", 0.3, &mut rng); // [k, m]
        let mut tn = SpikeMatrix::new();
        tn.build_transposed_from_dense(a.data(), 12, 9).unwrap();
        let at = a.transpose2d().unwrap();
        let mut explicit = SpikeMatrix::new();
        explicit.build_from_dense(at.data(), 9, 12).unwrap();
        assert_eq!(tn.row_ptr, explicit.row_ptr);
        assert_eq!(tn.idx, explicit.idx);
        assert_eq!(tn.val, explicit.val);
        assert_eq!(tn.is_binary(), explicit.is_binary());
    }

    #[test]
    fn clear_retains_capacity() {
        let mut sm = SpikeMatrix::new();
        sm.build_from_dense(&[1.0, 0.0, 1.0, 1.0], 2, 2).unwrap();
        let cap = (sm.idx.capacity(), sm.row_ptr.capacity());
        sm.clear();
        assert_eq!(sm.nnz(), 0);
        assert!(sm.idx.capacity() >= cap.0 && sm.row_ptr.capacity() >= cap.1);
    }
}
