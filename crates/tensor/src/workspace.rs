//! Reusable scratch arena for the zero-allocation timestep loop.
//!
//! An SNN forward pass allocates the same handful of buffer shapes — im2col
//! columns, layer outputs, membrane temporaries — once per layer per
//! timestep, `T` times per sample. [`Workspace`] parks those buffers on a
//! freelist instead: [`Workspace::take`] hands back a zero-filled buffer
//! (reusing a parked one when capacity allows) and [`Workspace::recycle`]
//! returns it. After one warm-up timestep every size class is populated and
//! the steady-state loop performs **no heap allocations** —
//! [`Workspace::stats`] counts hits and misses so benches and tests can
//! assert exactly that.
//!
//! # Lifetime rules
//!
//! - A workspace belongs to **one** network/evaluation loop at a time; the
//!   clone-pool evaluation harnesses give every worker its own (a cloned
//!   `Snn` starts with a fresh, empty workspace), so no locking is needed
//!   or performed.
//! - Buffers obtained from [`Workspace::take`] are always fully
//!   zero-filled; kernels may rely on that the same way they rely on
//!   [`crate::Tensor::zeros`].
//! - Recycling is optional — a buffer that escapes (e.g. a returned layer
//!   output that the caller keeps) is simply a future miss. The freelist is
//!   capped so unrecycled traffic cannot grow it without bound.
//! - Contents of recycled buffers are dead immediately; the arena clears
//!   them on the next `take`.
//! - Every buffer is an [`AlignedVec`]: arena data starts on a 64-byte
//!   boundary and stays aligned across recycling, so the SIMD kernels see
//!   cache-line-aligned rows for the life of the loop.

use crate::{AlignedVec, BitMatrix, SpikeMatrix, Tensor};

/// Freelist cap: more parked buffers than this and the oldest is dropped.
/// A full VGG/ResNet eval pass keeps well under this many live scratch
/// shapes, so the cap only guards against unbounded growth when callers
/// recycle more than they take.
const MAX_FREE: usize = 64;

/// Allocation counters for the zero-allocation claim.
///
/// `takes` counts every [`Workspace::take`]; `misses` counts the subset
/// that had to allocate (no parked buffer with sufficient capacity). A
/// warmed-up steady state shows `misses == 0` while `takes` keeps rising.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// Total buffer requests served.
    pub takes: u64,
    /// Requests that fell back to a fresh heap allocation.
    pub misses: u64,
}

/// Scratch-buffer arena threaded through the Eval-mode forward pass.
#[derive(Debug, Default)]
pub struct Workspace {
    free: Vec<AlignedVec>,
    spike: SpikeMatrix,
    bits: BitMatrix,
    takes: u64,
    misses: u64,
}

impl Workspace {
    /// An empty arena; buffers are adopted lazily as the first pass runs.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Hands out a zero-filled buffer of exactly `len` elements, reusing
    /// the best-fitting parked buffer (smallest sufficient capacity) when
    /// one exists.
    pub fn take(&mut self, len: usize) -> AlignedVec {
        self.takes += 1;
        let mut best: Option<(usize, usize)> = None; // (slot, capacity)
        for (slot, buf) in self.free.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= len && best.is_none_or(|(_, c)| cap < c) {
                best = Some((slot, cap));
            }
        }
        match best {
            Some((slot, _)) => {
                let mut buf = self.free.swap_remove(slot);
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.misses += 1;
                AlignedVec::zeroed(len)
            }
        }
    }

    /// Hands out a zero-filled tensor of the given shape, backed by an
    /// arena buffer.
    pub fn take_tensor(&mut self, dims: &[usize]) -> Tensor {
        let len = dims.iter().product();
        Tensor::from_aligned(self.take(len), dims).expect("take(len) matches the shape")
    }

    /// Parks a buffer for reuse. Beyond the freelist cap the smallest
    /// parked buffer is dropped, keeping the most useful capacities.
    pub fn recycle(&mut self, buf: AlignedVec) {
        if buf.capacity() == 0 {
            return;
        }
        self.free.push(buf);
        if self.free.len() > MAX_FREE {
            let smallest = self
                .free
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
                .map(|(i, _)| i)
                .expect("freelist nonempty");
            self.free.swap_remove(smallest);
        }
    }

    /// Parks a tensor's backing buffer for reuse.
    pub fn recycle_tensor(&mut self, t: Tensor) {
        self.recycle(t.into_aligned());
    }

    /// Borrows the arena's [`SpikeMatrix`] scratch (moved out so the caller
    /// can hold it while taking further buffers); return it with
    /// [`Workspace::recycle_spike`]. Its index/value capacity is retained
    /// across builds.
    pub fn take_spike(&mut self) -> SpikeMatrix {
        std::mem::take(&mut self.spike)
    }

    /// Returns the spike scratch taken with [`Workspace::take_spike`].
    pub fn recycle_spike(&mut self, sm: SpikeMatrix) {
        self.spike = sm;
    }

    /// Borrows the arena's [`BitMatrix`] scratch for the bit-packed
    /// kernels (moved out like [`Workspace::take_spike`]); return it with
    /// [`Workspace::recycle_bits`]. Its word capacity is retained across
    /// builds, so the warmed bitset path allocates nothing.
    pub fn take_bits(&mut self) -> BitMatrix {
        std::mem::take(&mut self.bits)
    }

    /// Returns the bitset scratch taken with [`Workspace::take_bits`].
    pub fn recycle_bits(&mut self, bm: BitMatrix) {
        self.bits = bm;
    }

    /// Current allocation counters.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats { takes: self.takes, misses: self.misses }
    }

    /// Zeroes the allocation counters (parked buffers stay parked) — call
    /// after warm-up, before the span whose allocations you want to count.
    pub fn reset_stats(&mut self) {
        self.takes = 0;
        self.misses = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_zero_filled_even_after_recycling_garbage() {
        let mut ws = Workspace::new();
        let mut buf = ws.take(8);
        buf.iter_mut().for_each(|v| *v = 7.0);
        ws.recycle(buf);
        let again = ws.take(8);
        assert_eq!(&again[..], &[0.0; 8]);
        ws.recycle(again);
        // shrinking reuse also re-zeroes
        let small = ws.take(3);
        assert_eq!(&small[..], &[0.0; 3]);
    }

    #[test]
    fn steady_state_has_no_misses() {
        let mut ws = Workspace::new();
        // warm-up: one take/recycle per size class
        for len in [16, 64, 256] {
            let b = ws.take(len);
            ws.recycle(b);
        }
        ws.reset_stats();
        for _ in 0..10 {
            let a = ws.take(16);
            let b = ws.take(64);
            let c = ws.take(256);
            ws.recycle(a);
            ws.recycle(b);
            ws.recycle(c);
        }
        let stats = ws.stats();
        assert_eq!(stats.takes, 30);
        assert_eq!(stats.misses, 0, "warmed workspace must not allocate");
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient_buffer() {
        let mut ws = Workspace::new();
        ws.recycle(AlignedVec::with_capacity(100));
        ws.recycle(AlignedVec::with_capacity(10));
        let b = ws.take(8);
        assert!(b.capacity() < 100, "should reuse the 10-cap buffer");
        ws.reset_stats();
        let big = ws.take(90); // only the 100-cap buffer fits
        assert_eq!(ws.stats().misses, 0);
        assert!(big.capacity() >= 90);
    }

    #[test]
    fn freelist_is_capped() {
        let mut ws = Workspace::new();
        for i in 0..(MAX_FREE + 10) {
            ws.recycle(AlignedVec::with_capacity(i + 1));
        }
        assert!(ws.free.len() <= MAX_FREE);
    }

    #[test]
    fn full_freelist_still_serves_best_fit_under_eviction_pressure() {
        // Fill the freelist to its cap with distinct capacities, then check
        // the boundary behaviors: best-fit `take` with a full list, eviction
        // of the smallest buffer when recycling past the cap, and an honest
        // miss when no parked buffer is large enough.
        // capacities are multiples of the 16-float lane so the parked
        // sizes are exact (AlignedVec rounds capacity up to whole lanes)
        let mut ws = Workspace::new();
        for i in 1..=MAX_FREE {
            ws.recycle(AlignedVec::with_capacity(16 * i));
        }
        assert_eq!(ws.free.len(), MAX_FREE);
        ws.reset_stats();

        // best-fit with a full freelist: smallest sufficient capacity wins
        let buf = ws.take(60); // fits the 64-cap buffer, not 48
        assert_eq!(ws.stats().misses, 0);
        assert!(buf.capacity() >= 60 && buf.capacity() < 72, "cap={}", buf.capacity());
        ws.recycle(buf); // back to exactly MAX_FREE parked buffers
        assert_eq!(ws.free.len(), MAX_FREE);

        // recycling one more evicts the smallest parked buffer, not the new one
        ws.recycle(AlignedVec::with_capacity(16 * (MAX_FREE + 1)));
        assert_eq!(ws.free.len(), MAX_FREE);
        let min_cap = ws.free.iter().map(AlignedVec::capacity).min().unwrap();
        assert!(min_cap >= 32, "smallest (16) must be evicted, min now {min_cap}");

        // a request larger than every parked buffer is an honest miss even
        // under full-freelist pressure
        ws.reset_stats();
        let huge = ws.take(16 * (MAX_FREE + 2));
        assert_eq!(ws.stats(), WorkspaceStats { takes: 1, misses: 1 });
        ws.recycle(huge);
        assert_eq!(ws.free.len(), MAX_FREE);
    }

    #[test]
    fn dynamic_batch_width_reuses_warmed_buffers_under_full_freelist() {
        // The continuous-batching serving loop requests the same per-layer
        // shapes at a row count that grows and shrinks every window. Once
        // warmed at the maximum width, every narrower width must be served
        // from the freelist (best-fit reuses a larger parked buffer), with
        // the cap still enforced — this extends the eviction-pressure test
        // to the serving engine's width trajectory.
        let mut ws = Workspace::new();
        let row = 32usize; // per-row elements of one fake layer activation
        let max_width = 8usize;
        // fill the freelist to its cap; the largest entries are the warmed
        // max-width buffers the serving loop parked
        for i in 1..=(MAX_FREE - 2) {
            ws.recycle(AlignedVec::with_capacity(i));
        }
        ws.recycle(AlignedVec::with_capacity(row * max_width));
        ws.recycle(AlignedVec::with_capacity(row * max_width));
        assert_eq!(ws.free.len(), MAX_FREE);
        ws.reset_stats();

        // width trajectory of a window: grow to max, shrink, grow again
        for &width in &[max_width, 3, 1, 5, max_width, 2] {
            let a = ws.take(row * width);
            let b = ws.take(row * width);
            assert_eq!(a.len(), row * width);
            assert!(a.iter().all(|&v| v == 0.0), "reused buffers must be re-zeroed");
            ws.recycle(a);
            ws.recycle(b);
            assert!(ws.free.len() <= MAX_FREE, "cap must hold across width changes");
        }
        assert_eq!(
            ws.stats(),
            WorkspaceStats { takes: 12, misses: 0 },
            "every width at or below the warmed maximum must hit the freelist"
        );

        // one width beyond the warmed maximum is an honest miss, after which
        // the new size class is itself warmed
        let wide = ws.take(row * (max_width + 2));
        assert_eq!(ws.stats().misses, 1);
        ws.recycle(wide);
        ws.reset_stats();
        let again = ws.take(row * (max_width + 2));
        assert_eq!(ws.stats(), WorkspaceStats { takes: 1, misses: 0 });
        ws.recycle(again);
        assert!(ws.free.len() <= MAX_FREE);
    }

    #[test]
    fn bits_scratch_roundtrips() {
        let mut ws = Workspace::new();
        let mut bm = ws.take_bits();
        bm.build_from_dense(&[1.0, 0.0, 0.0, 1.0], 2, 2).unwrap();
        ws.recycle_bits(bm);
        let bm = ws.take_bits();
        assert_eq!(bm.nnz(), 2);
        ws.recycle_bits(bm);
    }

    #[test]
    fn spike_scratch_roundtrips() {
        let mut ws = Workspace::new();
        let mut sm = ws.take_spike();
        sm.build_from_dense(&[1.0, 0.0, 0.0, 1.0], 2, 2).unwrap();
        ws.recycle_spike(sm);
        let sm = ws.take_spike();
        assert_eq!(sm.nnz(), 2);
        ws.recycle_spike(sm);
    }

    #[test]
    fn arena_buffers_stay_64_byte_aligned_across_recycling() {
        // The SIMD-tier satellite invariant: fresh takes, recycled reuse
        // (including shrink/grow reuse) and tensor round-trips all hand
        // back data on a cache-line boundary.
        let mut ws = Workspace::new();
        for len in [1usize, 8, 100, 513] {
            let buf = ws.take(len);
            assert_eq!(buf.as_slice().as_ptr() as usize % 64, 0, "fresh take({len})");
            ws.recycle(buf);
            let again = ws.take(len / 2 + 1);
            assert_eq!(again.as_slice().as_ptr() as usize % 64, 0, "reuse({len})");
            ws.recycle(again);
        }
        let t = ws.take_tensor(&[3, 17]);
        assert_eq!(t.data().as_ptr() as usize % 64, 0, "take_tensor");
        ws.recycle_tensor(t);
        let t2 = ws.take_tensor(&[3, 17]);
        assert_eq!(t2.data().as_ptr() as usize % 64, 0, "recycled tensor");
    }

    #[test]
    fn take_tensor_has_requested_shape() {
        let mut ws = Workspace::new();
        let t = ws.take_tensor(&[2, 3]);
        assert_eq!(t.dims(), &[2, 3]);
        assert_eq!(t.data(), &[0.0; 6]);
        ws.recycle_tensor(t);
        assert_eq!(ws.stats().takes, 1);
    }
}
