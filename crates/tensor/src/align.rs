//! 64-byte-aligned growable buffers backing [`crate::Tensor`] data and
//! [`crate::BitMatrix`] words.
//!
//! The SIMD kernels in [`crate::simd`] issue 256-bit vector loads; keeping
//! every arena buffer on a 64-byte (cache-line) boundary means a vector that
//! starts at a row boundary never splits a line, and the buffers the
//! [`crate::Workspace`] freelist recycles stay aligned across reuse.
//!
//! A plain `Vec<f32>` cannot be coerced to a stricter alignment soundly (the
//! deallocation layout must match the allocation layout), so [`AlignedVec`]
//! owns a `Vec` of 64-byte lanes and exposes the logical prefix as `&[f32]`
//! via `Deref`. Lane padding is always initialized (lanes are only created
//! whole and zero-filled), which is what makes the slice view sound. This is
//! the single place in the crate where `unsafe` touches memory layout; the
//! two pointer casts are documented invariant-by-invariant below.

/// Stamps an aligned growable buffer type over a 64-byte lane of `$elem`.
macro_rules! aligned_buffer {
    ($(#[$doc:meta])* $name:ident, $lane:ident, $elem:ty, $lane_len:expr, $zero:expr) => {
        #[repr(C, align(64))]
        #[derive(Clone, Copy)]
        struct $lane([$elem; $lane_len]);

        impl $lane {
            const ZERO: $lane = $lane([$zero; $lane_len]);
        }

        $(#[$doc])*
        #[derive(Clone, Default)]
        pub struct $name {
            lanes: Vec<$lane>,
            len: usize,
        }

        #[allow(unsafe_code)]
        impl $name {
            /// Elements per 64-byte lane.
            const LANE: usize = $lane_len;

            /// An empty buffer with no allocation.
            pub fn new() -> Self {
                $name { lanes: Vec::new(), len: 0 }
            }

            /// An empty buffer with room for at least `cap` elements
            /// (rounded up to a whole lane).
            pub fn with_capacity(cap: usize) -> Self {
                $name { lanes: Vec::with_capacity(cap.div_ceil(Self::LANE)), len: 0 }
            }

            /// A zero-filled buffer of `len` elements.
            pub fn zeroed(len: usize) -> Self {
                $name { lanes: vec![$lane::ZERO; len.div_ceil(Self::LANE)], len }
            }

            /// Copies a slice into a fresh aligned buffer.
            pub fn from_slice(s: &[$elem]) -> Self {
                let mut v = Self::with_capacity(s.len());
                v.extend_from_slice(s);
                v
            }

            /// Number of logical elements.
            pub fn len(&self) -> usize {
                self.len
            }

            /// Whether the buffer holds no elements.
            pub fn is_empty(&self) -> bool {
                self.len == 0
            }

            /// Capacity in elements (always a whole number of lanes).
            pub fn capacity(&self) -> usize {
                self.lanes.capacity() * Self::LANE
            }

            /// Drops all elements, keeping capacity.
            pub fn clear(&mut self) {
                self.len = 0;
            }

            fn ensure_lanes(&mut self, elems: usize) {
                let need = elems.div_ceil(Self::LANE);
                if self.lanes.len() < need {
                    self.lanes.resize(need, $lane::ZERO);
                }
            }

            /// Every initialized element, including lane padding past `len`.
            /// All lanes are created whole (zero-filled), so the full region
            /// is always initialized — the invariant both casts rely on.
            fn full_slice_mut(&mut self) -> &mut [$elem] {
                let n = self.lanes.len() * Self::LANE;
                // SAFETY: `lanes` owns `n` contiguous initialized elements
                // (lanes are plain arrays, created only via whole zeroed
                // lanes); the cast pointer is valid for `n` reads/writes and
                // more than sufficiently aligned for the element type.
                unsafe { std::slice::from_raw_parts_mut(self.lanes.as_mut_ptr().cast(), n) }
            }

            /// `Vec::resize` semantics: grow with `value`, or truncate.
            pub fn resize(&mut self, new_len: usize, value: $elem) {
                if new_len > self.len {
                    self.ensure_lanes(new_len);
                    let start = self.len;
                    self.full_slice_mut()[start..new_len].fill(value);
                }
                self.len = new_len;
            }

            /// Appends one element.
            pub fn push(&mut self, value: $elem) {
                self.ensure_lanes(self.len + 1);
                let i = self.len;
                self.len += 1;
                self.full_slice_mut()[i] = value;
            }

            /// Appends a slice.
            pub fn extend_from_slice(&mut self, s: &[$elem]) {
                let new_len = self.len + s.len();
                self.ensure_lanes(new_len);
                let start = self.len;
                self.len = new_len;
                self.full_slice_mut()[start..new_len].copy_from_slice(s);
            }

            /// The logical elements as a slice (64-byte aligned at index 0).
            pub fn as_slice(&self) -> &[$elem] {
                // SAFETY: same invariant as `full_slice_mut` (all lanes fully
                // initialized, `len <= lanes.len() * LANE`); an empty Vec's
                // dangling pointer is non-null and lane-aligned, which
                // `from_raw_parts` with length 0 permits.
                unsafe { std::slice::from_raw_parts(self.lanes.as_ptr().cast(), self.len) }
            }

            /// The logical elements as a mutable slice.
            pub fn as_mut_slice(&mut self) -> &mut [$elem] {
                let len = self.len;
                &mut self.full_slice_mut()[..len]
            }

            /// Copies the elements into a plain `Vec`.
            pub fn to_vec(&self) -> Vec<$elem> {
                self.as_slice().to_vec()
            }
        }

        impl std::ops::Deref for $name {
            type Target = [$elem];
            fn deref(&self) -> &[$elem] {
                self.as_slice()
            }
        }

        impl std::ops::DerefMut for $name {
            fn deref_mut(&mut self) -> &mut [$elem] {
                self.as_mut_slice()
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                self.as_slice().fmt(f)
            }
        }

        impl PartialEq for $name {
            fn eq(&self, other: &Self) -> bool {
                self.as_slice() == other.as_slice()
            }
        }

        impl From<Vec<$elem>> for $name {
            fn from(v: Vec<$elem>) -> Self {
                Self::from_slice(&v)
            }
        }

        impl FromIterator<$elem> for $name {
            fn from_iter<I: IntoIterator<Item = $elem>>(iter: I) -> Self {
                let it = iter.into_iter();
                let mut v = Self::with_capacity(it.size_hint().0);
                for x in it {
                    v.push(x);
                }
                v
            }
        }

        impl<'a> IntoIterator for &'a $name {
            type Item = &'a $elem;
            type IntoIter = std::slice::Iter<'a, $elem>;
            fn into_iter(self) -> Self::IntoIter {
                self.as_slice().iter()
            }
        }
    };
}

aligned_buffer!(
    /// A growable `f32` buffer whose data starts on a 64-byte boundary —
    /// the backing store of every [`crate::Tensor`] and every
    /// [`crate::Workspace`] arena buffer. Dereferences to `&[f32]` /
    /// `&mut [f32]`, so kernels and call sites treat it exactly like a
    /// `Vec<f32>`.
    AlignedVec,
    LaneF32,
    f32,
    16,
    0.0f32
);

aligned_buffer!(
    /// A growable `u64` buffer on a 64-byte boundary — the word storage of
    /// [`crate::BitMatrix`], so packed spike rows feed the SIMD gather
    /// kernels from cache-line-aligned words.
    AlignedWords,
    LaneU64,
    u64,
    8,
    0u64
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_pointer_is_64_byte_aligned() {
        // The satellite invariant: every buffer (fresh, grown, recycled
        // capacity) starts on a cache-line boundary.
        for n in [1usize, 7, 16, 17, 100, 4096] {
            let v = AlignedVec::zeroed(n);
            assert_eq!(v.as_slice().as_ptr() as usize % 64, 0, "zeroed({n})");
            let mut g = AlignedVec::new();
            g.resize(n, 1.5);
            assert_eq!(g.as_slice().as_ptr() as usize % 64, 0, "grown({n})");
            let w = AlignedWords::zeroed(n);
            assert_eq!(w.as_slice().as_ptr() as usize % 64, 0, "words({n})");
        }
    }

    #[test]
    fn behaves_like_vec() {
        let mut v = AlignedVec::new();
        assert!(v.is_empty());
        v.push(1.0);
        v.extend_from_slice(&[2.0, 3.0]);
        assert_eq!(&v[..], &[1.0, 2.0, 3.0]);
        v.resize(5, 9.0);
        assert_eq!(&v[..], &[1.0, 2.0, 3.0, 9.0, 9.0]);
        v.resize(2, 0.0);
        assert_eq!(&v[..], &[1.0, 2.0]);
        // regrowing after truncation fills with the new value, like Vec
        v.resize(4, 0.0);
        assert_eq!(&v[..], &[1.0, 2.0, 0.0, 0.0]);
        v.clear();
        assert!(v.is_empty());
        assert!(v.capacity() >= 5);
    }

    #[test]
    fn capacity_is_whole_lanes() {
        let v = AlignedVec::with_capacity(10);
        assert_eq!(v.capacity() % 16, 0);
        assert!(v.capacity() >= 16);
        let w = AlignedWords::with_capacity(3);
        assert_eq!(w.capacity() % 8, 0);
    }

    #[test]
    fn from_and_to_vec_round_trip() {
        let v: AlignedVec = vec![1.0f32, -2.0, 3.5].into();
        assert_eq!(v.to_vec(), vec![1.0, -2.0, 3.5]);
        let it: AlignedVec = (0..40).map(|x| x as f32).collect();
        assert_eq!(it.len(), 40);
        assert_eq!(it[39], 39.0);
        assert_eq!(it.as_slice().as_ptr() as usize % 64, 0);
    }

    #[test]
    fn mutation_through_deref() {
        let mut v = AlignedVec::zeroed(20);
        for (i, x) in v.iter_mut().enumerate() {
            *x = i as f32;
        }
        assert_eq!(v[19], 19.0);
        let sum: f32 = (&v).into_iter().sum();
        assert_eq!(sum, 190.0);
    }
}
