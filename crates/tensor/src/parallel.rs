//! Deterministic scoped-thread parallelism for the hot kernels and the
//! data-parallel evaluation harnesses above this crate.
//!
//! # Determinism contract
//!
//! Every helper here partitions work into **contiguous, disjoint** chunks and
//! merges results in **chunk-index order**. Combined with kernels that keep
//! the per-element float accumulation order unchanged (each worker owns a
//! disjoint slice of output rows), results are **bitwise identical** for any
//! worker count — `DTSNN_THREADS=1` reproduces today's serial path exactly,
//! and `DTSNN_THREADS=N` reproduces it too.
//!
//! # Worker-count knob
//!
//! The worker count comes from, in priority order:
//!
//! 1. a process-wide override installed with [`set_threads`] (used by tests
//!    and benches to compare thread counts inside one process),
//! 2. the `DTSNN_THREADS` environment variable (read once per process),
//! 3. [`std::thread::available_parallelism`].
//!
//! Zero and absurd values are clamped into `1..=MAX_THREADS`; unparsable
//! values fall back to the hardware default.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hard upper bound on the worker count; requests beyond it are clamped.
pub const MAX_THREADS: usize = 256;

/// Work below this many scalar operations runs serially: scoped-thread spawn
/// costs tens of microseconds, so tiny kernels would lose more than they gain.
/// The threshold depends only on the problem size — never on the thread
/// count — so it cannot break thread-count invariance.
const MIN_PARALLEL_WORK: usize = 1 << 15;

static OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// Clamps a requested worker count into the valid range (`0` → `1`).
pub fn clamp_threads(n: usize) -> usize {
    n.clamp(1, MAX_THREADS)
}

/// Parses a `DTSNN_THREADS` value; `None` flags a malformed string (the
/// caller warns and falls back to the hardware default).
pub(crate) fn parse_threads(raw: &str) -> Option<usize> {
    raw.trim().parse::<usize>().ok()
}

/// The configured worker count (override → `DTSNN_THREADS` → hardware).
pub fn num_threads() -> usize {
    let forced = OVERRIDE.load(Ordering::Relaxed);
    if forced != 0 {
        return forced;
    }
    *ENV_THREADS.get_or_init(|| match std::env::var("DTSNN_THREADS") {
        Ok(v) => match parse_threads(&v) {
            Some(n) => clamp_threads(n),
            None => {
                // OnceLock init runs at most once, so this warning cannot
                // repeat per process.
                eprintln!(
                    "dtsnn: warning: DTSNN_THREADS={v:?} is not a worker count; \
                     using the hardware default"
                );
                hardware_threads()
            }
        },
        Err(_) => hardware_threads(),
    })
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(MAX_THREADS)
}

/// Installs a process-wide worker-count override (clamped); `0` restores the
/// environment/hardware default. Returns the previous override (0 = none).
///
/// Because every parallel result is bitwise thread-count-invariant, flipping
/// this concurrently from another thread cannot change any numeric output —
/// the override only exists so tests and benches can pin the worker count.
pub fn set_threads(n: usize) -> usize {
    let value = if n == 0 { 0 } else { clamp_threads(n) };
    OVERRIDE.swap(value, Ordering::Relaxed)
}

/// Runs `f` with the worker count pinned to `n`, restoring the previous
/// override afterwards.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let prev = set_threads(n);
    let out = f();
    set_threads(prev);
    out
}

/// Worker count to use for a kernel touching `work` scalar operations over
/// `rows` partitionable rows.
fn threads_for(work: usize, rows: usize) -> usize {
    if work < MIN_PARALLEL_WORK {
        1
    } else {
        num_threads().min(rows.max(1))
    }
}

/// Splits `out` (a `rows × row_len` row-major buffer) into contiguous
/// row-chunks, one per worker, and calls `f(first_row, chunk)` on each from a
/// scoped thread. `work` is the kernel's total scalar-op estimate used to
/// gate parallelism.
///
/// Chunks are disjoint `&mut` slices, so each output element is written by
/// exactly one worker and per-element accumulation order is whatever `f`
/// does serially for that row — bitwise identical to a single `f(0, out)`.
pub fn for_each_row_chunk<F>(out: &mut [f32], row_len: usize, rows: usize, work: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    debug_assert_eq!(out.len(), rows * row_len.max(1));
    let threads = threads_for(work, rows);
    if threads <= 1 || rows == 0 {
        f(0, out);
        return;
    }
    let rows_per_chunk = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut chunks = out.chunks_mut(rows_per_chunk * row_len);
        let first = chunks.next().expect("rows > 0");
        for (i, chunk) in chunks.enumerate() {
            let f = &f;
            scope.spawn(move || f((i + 1) * rows_per_chunk, chunk));
        }
        // the caller's thread is worker 0
        f(0, first);
    });
}

/// Maps `f` over contiguous chunks of `items` (one chunk per worker) and
/// concatenates the per-chunk outputs in chunk order, preserving item order.
///
/// `f(first_index, chunk)` must return one output per item. Workers that need
/// per-worker state (e.g. a cloned network) build it once per chunk.
pub fn map_chunks<T, O, F>(items: &[T], f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(usize, &[T]) -> Vec<O> + Sync,
{
    let threads = num_threads().min(items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return f(0, items);
    }
    let per_chunk = items.len().div_ceil(threads);
    let mut results: Vec<Vec<O>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        let mut chunks = items.chunks(per_chunk);
        let first = chunks.next().expect("items nonempty");
        for (i, chunk) in chunks.enumerate() {
            let f = &f;
            handles.push(scope.spawn(move || f((i + 1) * per_chunk, chunk)));
        }
        let head = f(0, first);
        results.push(head);
        for h in handles {
            results.push(h.join().expect("parallel worker panicked"));
        }
    });
    let mut out = Vec::with_capacity(items.len());
    for r in results {
        out.extend(r);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // Tests that mutate the process-wide override serialize on this lock so
    // they cannot observe each other's override.
    static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn zero_and_absurd_worker_counts_are_clamped() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        assert_eq!(clamp_threads(0), 1);
        assert_eq!(clamp_threads(usize::MAX), MAX_THREADS);
        with_threads(1_000_000, || {
            assert_eq!(num_threads(), MAX_THREADS);
        });
        // set_threads(0) removes the override rather than forcing 0 workers
        let prev = set_threads(0);
        assert!(num_threads() >= 1);
        set_threads(prev);
    }

    #[test]
    fn with_threads_restores_previous_value() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let before = set_threads(3);
        with_threads(7, || assert_eq!(num_threads(), 7));
        assert_eq!(num_threads(), 3);
        set_threads(before);
    }

    #[test]
    fn row_chunks_cover_every_row_exactly_once() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        for threads in [1, 2, 3, 8] {
            with_threads(threads, || {
                let rows = 13;
                let row_len = 4;
                let mut buf = vec![0.0f32; rows * row_len];
                for_each_row_chunk(&mut buf, row_len, rows, usize::MAX, |first_row, chunk| {
                    for (r, row) in chunk.chunks_mut(row_len).enumerate() {
                        for v in row.iter_mut() {
                            *v += (first_row + r) as f32;
                        }
                    }
                });
                for r in 0..rows {
                    for c in 0..row_len {
                        assert_eq!(buf[r * row_len + c], r as f32, "row {r} col {c}");
                    }
                }
            });
        }
    }

    #[test]
    fn map_chunks_preserves_item_order() {
        let _guard = OVERRIDE_LOCK.lock().unwrap();
        let items: Vec<usize> = (0..29).collect();
        for threads in [1, 2, 4, 16] {
            let mapped = with_threads(threads, || {
                map_chunks(&items, |first, chunk| {
                    chunk.iter().enumerate().map(|(i, &v)| (first + i, v * 10)).collect()
                })
            });
            assert_eq!(mapped.len(), items.len());
            for (i, (idx, v)) in mapped.iter().enumerate() {
                assert_eq!(*idx, i);
                assert_eq!(*v, i * 10);
            }
        }
    }

    #[test]
    fn malformed_thread_counts_are_rejected_by_the_parser() {
        // num_threads() reads the env exactly once per process, so the
        // malformed-input behavior is pinned at the parser seam: `None`
        // means "warn and fall back to the hardware default".
        for bad in ["abc", "", "  ", "1.5", "-1", "0x4", "4 workers", "٤"] {
            assert_eq!(parse_threads(bad), None, "{bad:?} must be rejected");
        }
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads("  8  "), Some(8));
        assert_eq!(parse_threads("0"), Some(0)); // clamped to 1 later
    }

    #[test]
    fn small_work_stays_serial() {
        // threads_for gates on the work estimate, not the thread knob
        assert_eq!(threads_for(10, 100), 1);
        assert!(threads_for(usize::MAX, 100) >= 1);
    }
}
