//! 2-D convolution via im2col + matmul, with the exact backward pass.
//!
//! Layout is `NCHW`. The column matrix produced by [`im2col`] has one row per
//! output pixel (`n * oh * ow` rows) and one column per kernel tap
//! (`c * k * k` columns), so a convolution is a single matrix product with a
//! `[c_out, c*k*k]` weight matrix.
//!
//! The unfold/fold/layout passes are partitioned across the
//! [`crate::parallel`] pool: `im2col` by output row (each row written once)
//! and `col2im`/layout transforms by batch index (all `+=` accumulation for a
//! sample stays on one worker, in serial order), so results are bitwise
//! identical for any thread count.

use crate::backend::{self, BackendKind};
use crate::linalg::{add_bias_rows, matmul_dense};
use crate::quant::QuantizedWeights;
use crate::{parallel, Result, Tensor, TensorError, Workspace};

/// Geometry of a 2-D convolution (square kernel, symmetric padding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel extent (k×k).
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding on every border.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a spec, validating the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidArgument`] if any extent is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0 {
            return Err(TensorError::InvalidArgument(
                "conv2d channels, kernel and stride must be nonzero".into(),
            ));
        }
        Ok(Conv2dSpec { in_channels, out_channels, kernel, stride, padding })
    }

    /// Output spatial extent for an input of extent `(h, w)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] if the kernel exceeds the
    /// padded input.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let ph = h + 2 * self.padding;
        let pw = w + 2 * self.padding;
        if self.kernel > ph || self.kernel > pw {
            return Err(TensorError::InvalidGeometry(format!(
                "kernel {} exceeds padded input {}x{}",
                self.kernel, ph, pw
            )));
        }
        Ok(((ph - self.kernel) / self.stride + 1, (pw - self.kernel) / self.stride + 1))
    }

    /// Number of columns of the im2col matrix: `c_in * k * k`.
    pub fn patch_len(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Weight tensor shape `[c_out, c_in * k * k]`.
    pub fn weight_dims(&self) -> [usize; 2] {
        [self.out_channels, self.patch_len()]
    }

    /// Multiply-accumulate count for one input of extent `(h, w)` — used by
    /// the IMC latency/energy model.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors from [`Conv2dSpec::output_hw`].
    pub fn macs(&self, h: usize, w: usize) -> Result<usize> {
        let (oh, ow) = self.output_hw(h, w)?;
        Ok(oh * ow * self.out_channels * self.patch_len())
    }
}

/// Unfolds `input` (`[n, c, h, w]`) into a `[n*oh*ow, c*k*k]` column matrix.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-4-D input,
/// [`TensorError::ShapeMismatch`] when channel counts disagree, and geometry
/// errors from [`Conv2dSpec::output_hw`].
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    let [n, c, h, w] = dims4(input)?;
    if c != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, spec.in_channels, h, w],
            actual: input.dims().to_vec(),
        });
    }
    let (oh, ow) = spec.output_hw(h, w)?;
    let rows = n * oh * ow;
    let mut cols = Tensor::zeros(&[rows, spec.patch_len()]);
    if rows == 0 {
        return Ok(cols);
    }
    im2col_core(input.data(), [n, c, h, w], spec, oh, ow, cols.data_mut());
    Ok(cols)
}

/// Writes the im2col unfolding into a pre-zeroed `[n*oh*ow, patch_len]`
/// buffer (padding taps stay zero). Shared by [`im2col`] and the
/// workspace-backed dense path of [`conv2d_ws`].
fn im2col_core(
    src: &[f32],
    [n, c, h, w]: [usize; 4],
    spec: &Conv2dSpec,
    oh: usize,
    ow: usize,
    dst: &mut [f32],
) {
    let k = spec.kernel;
    let pl = spec.patch_len();
    let rows = n * oh * ow;
    let pad = spec.padding as isize;
    let work = rows.saturating_mul(pl);
    parallel::for_each_row_chunk(dst, pl, rows, work, |first_row, dst| {
        for (local, patch) in dst.chunks_mut(pl).enumerate() {
            let flat = first_row + local;
            let ox = flat % ow;
            let oy = (flat / ow) % oh;
            let ni = flat / (ow * oh);
            let iy0 = (oy * spec.stride) as isize - pad;
            let ix0 = (ox * spec.stride) as isize - pad;
            for ci in 0..c {
                let cbase = (ni * c + ci) * h * w;
                for ky in 0..k {
                    let iy = iy0 + ky as isize;
                    if iy < 0 || iy >= h as isize {
                        continue; // padding stays zero
                    }
                    let srow = cbase + iy as usize * w;
                    let drow = (ci * k + ky) * k;
                    for kx in 0..k {
                        let ix = ix0 + kx as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        patch[drow + kx] = src[srow + ix as usize];
                    }
                }
            }
        }
    });
}

/// Folds a column-matrix gradient back onto the input: the adjoint of
/// [`im2col`]. `cols` is `[n*oh*ow, c*k*k]`; the result is `[n, c, h, w]`.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `cols` disagrees with the
/// geometry, plus geometry errors from [`Conv2dSpec::output_hw`].
pub fn col2im(cols: &Tensor, spec: &Conv2dSpec, n: usize, h: usize, w: usize) -> Result<Tensor> {
    let (oh, ow) = spec.output_hw(h, w)?;
    let k = spec.kernel;
    let c = spec.in_channels;
    let pl = spec.patch_len();
    if cols.dims() != [n * oh * ow, pl] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n * oh * ow, pl],
            actual: cols.dims().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[n, c, h, w]);
    let sample_len = c * h * w;
    if n == 0 || sample_len == 0 {
        return Ok(out);
    }
    let src = cols.data();
    let pad = spec.padding as isize;
    // Partition by batch index: every += for sample ni lands in that sample's
    // chunk, in the same (oy, ox, ci, ky, kx) order as the serial loop.
    let work = n.saturating_mul(oh * ow).saturating_mul(pl);
    parallel::for_each_row_chunk(out.data_mut(), sample_len, n, work, |first_n, dst| {
        for (local_ni, sample) in dst.chunks_mut(sample_len).enumerate() {
            let ni = first_n + local_ni;
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((ni * oh + oy) * ow + ox) * pl;
                    let iy0 = (oy * spec.stride) as isize - pad;
                    let ix0 = (ox * spec.stride) as isize - pad;
                    for ci in 0..c {
                        let cbase = ci * h * w;
                        for ky in 0..k {
                            let iy = iy0 + ky as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            let drow = cbase + iy as usize * w;
                            let srow = row + (ci * k + ky) * k;
                            for kx in 0..k {
                                let ix = ix0 + kx as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                sample[drow + ix as usize] += src[srow + kx];
                            }
                        }
                    }
                }
            }
        }
    });
    Ok(out)
}

/// Full convolution forward pass.
///
/// `input` is `[n, c_in, h, w]`, `weight` is `[c_out, c_in*k*k]`, `bias` is
/// `[c_out]` (optional). Returns `(output [n, c_out, oh, ow], cols)` — the
/// column matrix is exposed so the caller can reuse it in the backward pass
/// ([C-INTERMEDIATE]).
///
/// # Errors
///
/// Propagates shape and geometry errors from [`im2col`] / matmul.
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Result<(Tensor, Tensor)> {
    let [n, _, h, w] = dims4(input)?;
    let (oh, ow) = spec.output_hw(h, w)?;
    let cols = im2col(input, spec)?;
    // [n*oh*ow, pl] × [pl, c_out] → [n*oh*ow, c_out]. Using plain matmul with
    // the column matrix on the left lets the kernel dispatch on the column
    // matrix's spike density — sparse inputs take the event-driven path.
    let w_t = weight.transpose2d()?;
    let mut out_mat = cols.matmul(&w_t)?;
    if let Some(b) = bias {
        if b.dims() != [spec.out_channels] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![spec.out_channels],
                actual: b.dims().to_vec(),
            });
        }
        add_bias_rows(out_mat.data_mut(), spec.out_channels, n * oh * ow, b.data());
    }
    let out = rows_to_nchw(&out_mat, n, spec.out_channels, oh, ow);
    Ok((out, cols))
}

/// Eval-mode convolution forward with every intermediate drawn from `ws`:
/// the transposed weight, the output row matrix, the NCHW output buffer,
/// and — on the dense branch — the im2col column matrix. Below the sparse
/// dispatch threshold the column matrix is never materialized at all: a
/// [`crate::SpikeMatrix`] im2col build emits only the active patch entries
/// and the product becomes per-spike row adds.
///
/// Bitwise identical to [`conv2d`] (the accumulation order per output
/// element is the same on every branch); unlike `conv2d` it does not return
/// the column matrix, so it is for inference only — training uses
/// [`conv2d`] and keeps `cols` for the backward pass.
///
/// # Errors
///
/// Propagates shape and geometry errors from [`im2col`] / matmul, plus
/// [`TensorError::ShapeMismatch`] for a weight or bias that disagrees with
/// `spec`.
pub fn conv2d_ws(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
    ws: &mut Workspace,
) -> Result<Tensor> {
    let (density, binary) = input.spike_stats();
    conv2d_ws_with(backend::choose_kernel(density, binary), input, weight, bias, spec, ws)
}

/// [`conv2d_ws`] with the kernel family fixed by the caller (layers pick it
/// once per forward via [`crate::backend::choose_layer`] so the choice can
/// be recorded). On the bitset branch the im2col unfolding is **bit-packed**
/// — one `u64` word per 64 patch taps, built directly from the NCHW input —
/// and the product becomes word-driven row adds.
///
/// # Errors
///
/// Same conditions as [`conv2d_ws`], plus
/// [`TensorError::InvalidArgument`] for [`BackendKind::Quantized`] (which
/// needs a [`QuantizedWeights`] cache — use [`conv2d_ws_quant`]) or a
/// non-binary input forced down the bitset branch.
pub fn conv2d_ws_with(
    kind: BackendKind,
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
    ws: &mut Workspace,
) -> Result<Tensor> {
    let [n, c, h, w] = dims4(input)?;
    if c != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, spec.in_channels, h, w],
            actual: input.dims().to_vec(),
        });
    }
    if weight.dims() != spec.weight_dims() {
        return Err(TensorError::ShapeMismatch {
            expected: spec.weight_dims().to_vec(),
            actual: weight.dims().to_vec(),
        });
    }
    let co = spec.out_channels;
    if let Some(b) = bias {
        if b.dims() != [co] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![co],
                actual: b.dims().to_vec(),
            });
        }
    }
    let (oh, ow) = spec.output_hw(h, w)?;
    let rows = n * oh * ow;
    let pl = spec.patch_len();
    let mut w_t = ws.take(pl * co);
    transpose_into(weight.data(), co, pl, &mut w_t);
    let mut out_mat = ws.take(rows * co);
    if rows > 0 {
        match kind {
            BackendKind::Csr => {
                let mut sm = ws.take_spike();
                sm.build_from_im2col(input, spec)?;
                sm.matmul_into(&w_t, co, &mut out_mat);
                ws.recycle_spike(sm);
            }
            BackendKind::Bitset => {
                let mut bm = ws.take_bits();
                bm.build_from_im2col(input, spec)?;
                bm.matmul_into(&w_t, co, &mut out_mat);
                ws.recycle_bits(bm);
            }
            BackendKind::Dense => {
                let mut cols = ws.take(rows * pl);
                im2col_core(input.data(), [n, c, h, w], spec, oh, ow, &mut cols);
                matmul_dense(&cols, rows, pl, &w_t, co, &mut out_mat);
                ws.recycle(cols);
            }
            BackendKind::Quantized => {
                return Err(TensorError::InvalidArgument(
                    "conv2d_ws_with cannot run the quantized backend; quantize the \
                     weights and call conv2d_ws_quant"
                        .into(),
                ));
            }
        }
        if let Some(b) = bias {
            add_bias_rows(&mut out_mat, co, rows, b.data());
        }
    }
    ws.recycle(w_t);
    let mut out = ws.take(n * co * oh * ow);
    rows_to_nchw_core(&out_mat, n, co, oh, ow, &mut out);
    ws.recycle(out_mat);
    Tensor::from_aligned(out, &[n, co, oh, ow])
}

/// Quantized convolution forward: for a binary input the bit-packed im2col
/// feeds the integer kernel — each output element is an exact `i32` sum of
/// the active weight codes in the filter's **natural** `[c_out, c_in*k*k]`
/// layout (no transpose needed) rescaled once by `Δ` — and a non-binary
/// input falls back to the ordinary [`conv2d_ws`] dispatch over the
/// on-grid dequantized weights. Deterministic and thread-count-invariant
/// on both branches.
///
/// # Errors
///
/// Same conditions as [`conv2d_ws`].
pub fn conv2d_ws_quant(
    input: &Tensor,
    qw: &QuantizedWeights,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
    ws: &mut Workspace,
) -> Result<Tensor> {
    let (_, binary) = input.spike_stats();
    if !binary {
        return conv2d_ws(input, qw.dequantized(), bias, spec, ws);
    }
    let [n, c, h, w] = dims4(input)?;
    if c != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, spec.in_channels, h, w],
            actual: input.dims().to_vec(),
        });
    }
    let co = spec.out_channels;
    if [qw.rows(), qw.cols()] != spec.weight_dims() {
        return Err(TensorError::ShapeMismatch {
            expected: spec.weight_dims().to_vec(),
            actual: vec![qw.rows(), qw.cols()],
        });
    }
    if let Some(b) = bias {
        if b.dims() != [co] {
            return Err(TensorError::ShapeMismatch {
                expected: vec![co],
                actual: b.dims().to_vec(),
            });
        }
    }
    let (oh, ow) = spec.output_hw(h, w)?;
    let rows = n * oh * ow;
    let mut out_mat = ws.take(rows * co);
    if rows > 0 {
        let mut bm = ws.take_bits();
        bm.build_from_im2col(input, spec)?;
        qw.matmul_nt_bits_into(&bm, &mut out_mat);
        ws.recycle_bits(bm);
        if let Some(b) = bias {
            add_bias_rows(&mut out_mat, co, rows, b.data());
        }
    }
    let mut out = ws.take(n * co * oh * ow);
    rows_to_nchw_core(&out_mat, n, co, oh, ow, &mut out);
    ws.recycle(out_mat);
    Tensor::from_aligned(out, &[n, co, oh, ow])
}

/// Transposes a row-major `[r, c]` buffer into `out[c, r]`.
fn transpose_into(src: &[f32], r: usize, c: usize, out: &mut [f32]) {
    debug_assert_eq!(src.len(), r * c);
    debug_assert_eq!(out.len(), r * c);
    for i in 0..r {
        for (j, &v) in src[i * c..(i + 1) * c].iter().enumerate() {
            out[j * r + i] = v;
        }
    }
}

/// Gradients of a convolution.
///
/// Given upstream `grad_out` (`[n, c_out, oh, ow]`) and the `cols` matrix
/// returned by [`conv2d`], computes `(grad_input, grad_weight, grad_bias)`.
///
/// # Errors
///
/// Propagates shape and geometry errors from the underlying matrix ops.
pub fn conv2d_backward(
    grad_out: &Tensor,
    cols: &Tensor,
    weight: &Tensor,
    spec: &Conv2dSpec,
    input_hw: (usize, usize),
) -> Result<(Tensor, Tensor, Tensor)> {
    let [n, co, oh, ow] = dims4(grad_out)?;
    if co != spec.out_channels {
        return Err(TensorError::ShapeMismatch {
            expected: vec![n, spec.out_channels, oh, ow],
            actual: grad_out.dims().to_vec(),
        });
    }
    let gmat = nchw_to_rows(grad_out);
    // dWᵀ = colsᵀ × gmat → [pl, c_out]; putting the (sparse, binary) column
    // matrix first lets matmul_tn skip its zeros, then a cheap transpose
    // yields dW = [c_out, pl].
    let grad_weight = cols.matmul_tn(&gmat)?.transpose2d()?;
    let grad_bias = gmat.sum_rows()?;
    // dcols = gmat × W → [n*oh*ow, pl]
    let dcols = gmat.matmul(weight)?;
    let grad_input = col2im(&dcols, spec, n, input_hw.0, input_hw.1)?;
    Ok((grad_input, grad_weight, grad_bias))
}

/// `[n*oh*ow, c]` row matrix → `[n, c, oh, ow]`.
fn rows_to_nchw(mat: &Tensor, n: usize, c: usize, oh: usize, ow: usize) -> Tensor {
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    rows_to_nchw_core(mat.data(), n, c, oh, ow, out.data_mut());
    out
}

/// Core of [`rows_to_nchw`] over raw buffers (every element written once).
fn rows_to_nchw_core(src: &[f32], n: usize, c: usize, oh: usize, ow: usize, dst: &mut [f32]) {
    let sample_len = c * oh * ow;
    if n == 0 || sample_len == 0 {
        return;
    }
    let work = n.saturating_mul(sample_len);
    parallel::for_each_row_chunk(dst, sample_len, n, work, |first_n, dst| {
        for (local_ni, sample) in dst.chunks_mut(sample_len).enumerate() {
            let ni = first_n + local_ni;
            for oy in 0..oh {
                for ox in 0..ow {
                    let row = ((ni * oh + oy) * ow + ox) * c;
                    for ci in 0..c {
                        sample[(ci * oh + oy) * ow + ox] = src[row + ci];
                    }
                }
            }
        }
    });
}

/// `[n, c, oh, ow]` → `[n*oh*ow, c]` row matrix.
fn nchw_to_rows(t: &Tensor) -> Tensor {
    let [n, c, oh, ow] = dims4(t).expect("nchw_to_rows requires 4-d input");
    let mut out = Tensor::zeros(&[n * oh * ow, c]);
    let sample_len = oh * ow * c;
    if n == 0 || sample_len == 0 {
        return out;
    }
    let src = t.data();
    let work = n.saturating_mul(sample_len);
    parallel::for_each_row_chunk(out.data_mut(), sample_len, n, work, |first_n, dst| {
        for (local_ni, sample) in dst.chunks_mut(sample_len).enumerate() {
            let ni = first_n + local_ni;
            for ci in 0..c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        sample[((oy * ow + ox) * c) + ci] =
                            src[((ni * c + ci) * oh + oy) * ow + ox];
                    }
                }
            }
        }
    });
    out
}

fn dims4(t: &Tensor) -> Result<[usize; 4]> {
    let d = t.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch { expected: 4, actual: d.len() });
    }
    Ok([d[0], d[1], d[2], d[3]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{sparse, TensorRng};

    fn naive_conv(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: &Conv2dSpec,
    ) -> Tensor {
        let [n, c, h, w] = dims4(input).unwrap();
        let (oh, ow) = spec.output_hw(h, w).unwrap();
        let k = spec.kernel;
        let mut out = Tensor::zeros(&[n, spec.out_channels, oh, ow]);
        for ni in 0..n {
            for co in 0..spec.out_channels {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bias.map(|b| b.data()[co]).unwrap_or(0.0);
                        for ci in 0..c {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = (oy * spec.stride + ky) as isize
                                        - spec.padding as isize;
                                    let ix = (ox * spec.stride + kx) as isize
                                        - spec.padding as isize;
                                    if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                        continue;
                                    }
                                    let iv = input
                                        .at(&[ni, ci, iy as usize, ix as usize])
                                        .unwrap();
                                    let wv =
                                        weight.at(&[co, (ci * k + ky) * k + kx]).unwrap();
                                    acc += iv * wv;
                                }
                            }
                        }
                        out.set(&[ni, co, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    #[test]
    fn spec_output_geometry() {
        let s = Conv2dSpec::new(3, 8, 3, 1, 1).unwrap();
        assert_eq!(s.output_hw(16, 16).unwrap(), (16, 16));
        let s2 = Conv2dSpec::new(3, 8, 3, 2, 1).unwrap();
        assert_eq!(s2.output_hw(16, 16).unwrap(), (8, 8));
        assert!(Conv2dSpec::new(0, 8, 3, 1, 1).is_err());
        assert!(s.output_hw(0, 0).is_err());
    }

    #[test]
    fn conv_matches_naive_reference() {
        let mut rng = TensorRng::seed_from(1);
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let spec = Conv2dSpec::new(2, 3, 3, stride, pad).unwrap();
            let x = Tensor::randn(&[2, 2, 6, 6], 0.0, 1.0, &mut rng);
            let w = Tensor::randn(&[3, spec.patch_len()], 0.0, 1.0, &mut rng);
            let b = Tensor::randn(&[3], 0.0, 1.0, &mut rng);
            let (fast, _) = conv2d(&x, &w, Some(&b), &spec).unwrap();
            let slow = naive_conv(&x, &w, Some(&b), &spec);
            assert_eq!(fast.dims(), slow.dims());
            for (a, b) in fast.data().iter().zip(slow.data()) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b} (stride={stride} pad={pad})");
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of an adjoint pair, which is exactly what backward needs.
        let mut rng = TensorRng::seed_from(2);
        let spec = Conv2dSpec::new(2, 1, 3, 1, 1).unwrap();
        let x = Tensor::randn(&[1, 2, 5, 5], 0.0, 1.0, &mut rng);
        let cols = im2col(&x, &spec).unwrap();
        let y = Tensor::randn(cols.dims(), 0.0, 1.0, &mut rng);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(a, b)| a * b).sum();
        let back = col2im(&y, &spec, 1, 5, 5).unwrap();
        let rhs: f32 = x.data().iter().zip(back.data()).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = TensorRng::seed_from(3);
        let spec = Conv2dSpec::new(1, 2, 3, 1, 1).unwrap();
        let x = Tensor::randn(&[1, 1, 4, 4], 0.0, 1.0, &mut rng);
        let w = Tensor::randn(&[2, spec.patch_len()], 0.0, 0.5, &mut rng);
        let b = Tensor::zeros(&[2]);
        let (y, cols) = conv2d(&x, &w, Some(&b), &spec).unwrap();
        // loss = sum(y); upstream grad is all ones.
        let gy = Tensor::ones(y.dims());
        let (gx, gw, gb) = conv2d_backward(&gy, &cols, &w, &spec, (4, 4)).unwrap();

        let eps = 1e-3;
        // check a few weight coordinates
        for &idx in &[0usize, 5, 11] {
            let mut wp = w.clone();
            wp.data_mut()[idx] += eps;
            let (yp, _) = conv2d(&x, &wp, Some(&b), &spec).unwrap();
            let num = (yp.sum() - y.sum()) / eps;
            assert!((num - gw.data()[idx]).abs() < 1e-1, "gw[{idx}]: {num} vs {}", gw.data()[idx]);
        }
        // check a few input coordinates
        for &idx in &[0usize, 7, 15] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let (yp, _) = conv2d(&xp, &w, Some(&b), &spec).unwrap();
            let num = (yp.sum() - y.sum()) / eps;
            assert!((num - gx.data()[idx]).abs() < 1e-1, "gx[{idx}]: {num} vs {}", gx.data()[idx]);
        }
        // bias gradient is #output pixels per channel
        assert_eq!(gb.data(), &[16.0, 16.0]);
    }

    #[test]
    fn conv_forward_backward_are_thread_count_invariant() {
        let mut rng = TensorRng::seed_from(21);
        // 4 samples × 3ch × 12px clears the parallel-work threshold.
        let spec = Conv2dSpec::new(3, 8, 3, 1, 1).unwrap();
        let x = Tensor::randn(&[4, 3, 12, 12], 0.0, 1.0, &mut rng);
        let w = Tensor::randn(&[8, spec.patch_len()], 0.0, 0.5, &mut rng);
        let b = Tensor::randn(&[8], 0.0, 0.1, &mut rng);
        let run = || {
            let (y, cols) = conv2d(&x, &w, Some(&b), &spec).unwrap();
            let gy = Tensor::ones(y.dims());
            let (gx, gw, gb) = conv2d_backward(&gy, &cols, &w, &spec, (12, 12)).unwrap();
            (y, gx, gw, gb)
        };
        let serial = crate::parallel::with_threads(1, run);
        for threads in [2, 4] {
            let par = crate::parallel::with_threads(threads, run);
            for (s, p) in
                [(&serial.0, &par.0), (&serial.1, &par.1), (&serial.2, &par.2), (&serial.3, &par.3)]
            {
                let sb: Vec<u32> = s.data().iter().map(|v| v.to_bits()).collect();
                let pb: Vec<u32> = p.data().iter().map(|v| v.to_bits()).collect();
                assert_eq!(sb, pb, "threads={threads}");
            }
        }
    }

    #[test]
    fn sparse_dense_conv2d_ws_matches_conv2d_bitwise() {
        // conv2d_ws must reproduce conv2d bit for bit on both dispatch
        // branches, for binary/ternary/dense inputs, at 1 and 4 threads,
        // and across repeated passes over one warmed workspace.
        let mut rng = TensorRng::seed_from(91);
        let spec = Conv2dSpec::new(3, 5, 3, 1, 1).unwrap();
        let weight = Tensor::randn(&[5, spec.patch_len()], 0.0, 0.5, &mut rng);
        let bias = Tensor::randn(&[5], 0.0, 0.1, &mut rng);
        for kind in ["binary", "ternary", "dense"] {
            let mut x = Tensor::zeros(&[2, 3, 8, 8]);
            for v in x.data_mut().iter_mut() {
                match kind {
                    "binary" => {
                        if rng.bernoulli(0.1) {
                            *v = 1.0;
                        }
                    }
                    "ternary" => {
                        if rng.bernoulli(0.1) {
                            *v = if rng.bernoulli(0.5) { 1.0 } else { -1.0 };
                        }
                    }
                    _ => *v = rng.uniform(-1.0, 1.0),
                }
            }
            for threads in [1, 4] {
                crate::parallel::with_threads(threads, || {
                    let (want, _) = sparse::with_density_threshold(-1.0, || {
                        conv2d(&x, &weight, Some(&bias), &spec).unwrap()
                    });
                    let wb: Vec<u32> = want.data().iter().map(|v| v.to_bits()).collect();
                    for threshold in [-1.0f32, 1.0] {
                        let mut ws = crate::Workspace::new();
                        for pass in 0..2 {
                            let got = sparse::with_density_threshold(threshold, || {
                                conv2d_ws(&x, &weight, Some(&bias), &spec, &mut ws).unwrap()
                            });
                            assert_eq!(got.dims(), want.dims());
                            let gb: Vec<u32> =
                                got.data().iter().map(|v| v.to_bits()).collect();
                            assert_eq!(
                                wb, gb,
                                "{kind} threads={threads} threshold={threshold} pass={pass}"
                            );
                            ws.recycle_tensor(got);
                        }
                    }
                });
            }
        }
    }

    #[test]
    fn conv2d_ws_validates_shapes() {
        let mut ws = crate::Workspace::new();
        let spec = Conv2dSpec::new(2, 3, 3, 1, 1).unwrap();
        let x = Tensor::zeros(&[1, 2, 4, 4]);
        let w_good = Tensor::zeros(&[3, spec.patch_len()]);
        let w_bad = Tensor::zeros(&[3, spec.patch_len() + 1]);
        assert!(conv2d_ws(&x, &w_bad, None, &spec, &mut ws).is_err());
        let b_bad = Tensor::zeros(&[4]);
        assert!(conv2d_ws(&x, &w_good, Some(&b_bad), &spec, &mut ws).is_err());
        let x_bad = Tensor::zeros(&[1, 3, 4, 4]);
        assert!(conv2d_ws(&x_bad, &w_good, None, &spec, &mut ws).is_err());
        assert!(conv2d_ws(&x, &w_good, None, &spec, &mut ws).is_ok());
    }

    #[test]
    fn macs_counts_products() {
        let spec = Conv2dSpec::new(3, 8, 3, 1, 1).unwrap();
        // 16x16 out, 8 filters, 27 taps each
        assert_eq!(spec.macs(16, 16).unwrap(), 16 * 16 * 8 * 27);
    }
}
