//! Integration of the algorithmic stack with the IMC hardware model:
//! measured spike activity drives the energy model, DT-SNN saves energy and
//! EDP, and the LUT-based σ–E module agrees with the algorithmic policy.

use dt_snn::dtsnn::{
    DynamicEvaluation, DynamicInference, ExitPolicy, HardwareProfile, StaticEvaluation,
};
use dt_snn::imc::{
    exact_normalized_entropy, ChipMapping, Component, CostModel, HardwareConfig, SigmaEModule,
};
use dt_snn::snn::{
    vgg16_geometry, vgg_small, vgg_small_density_map, vgg_small_geometry, LossKind, ModelConfig,
    SgdConfig, Trainer, TrainerConfig,
};
use dt_snn::data::{SyntheticVision, VisionConfig};
use dt_snn::tensor::{softmax_rows, Tensor, TensorRng};

fn quick_setup() -> (dt_snn::snn::Snn, HardwareProfile, Vec<Vec<Tensor>>, Vec<usize>) {
    let data = SyntheticVision::generate(
        &VisionConfig {
            classes: 4,
            train_size: 120,
            test_size: 60,
            prototype_similarity: 0.5,
            ..VisionConfig::default()
        },
        21,
    )
    .unwrap();
    let cfg = ModelConfig { num_classes: 4, width: 16, ..ModelConfig::default() };
    let mut rng = TensorRng::seed_from(21);
    let mut net = vgg_small(&cfg, &mut rng).unwrap();
    let trainer = Trainer::new(TrainerConfig {
        epochs: 4,
        batch_size: 32,
        timesteps: 4,
        loss: LossKind::PerTimestep,
        sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 1e-4 },
        seed: 5,
    })
    .unwrap();
    trainer.fit(&mut net, &data.train.frames(), &data.train.labels()).unwrap();
    let mut model_cfg = cfg;
    model_cfg.num_classes = 4;
    let profile = HardwareProfile::new(
        &vgg_small_geometry(&model_cfg),
        vgg_small_density_map(),
        4,
        &HardwareConfig::default(),
    )
    .unwrap();
    (net, profile, data.test.frames(), data.test.labels())
}

#[test]
fn measured_activity_drives_energy_and_dtsnn_saves_edp() {
    let (mut net, profile, frames, labels) = quick_setup();
    let static_eval = StaticEvaluation::run(&mut net, &frames, &labels, 4).unwrap();
    // measured spike densities are meaningful (nonzero, subunit)
    let densities = profile.densities(&static_eval.activity);
    assert_eq!(densities[0], 1.0, "input layer is analog-encoded");
    for &d in &densities[1..] {
        assert!(d > 0.0 && d < 1.0, "density {d} out of the plausible band");
    }
    let static_cost = profile.static_cost(&static_eval.activity, 4.0).unwrap();

    let runner = DynamicInference::new(ExitPolicy::entropy(0.4).unwrap(), 4).unwrap();
    let dyn_eval = DynamicEvaluation::run(&mut net, &runner, &frames, &labels, None).unwrap();
    let dyn_cost =
        profile.dynamic_cost(&dyn_eval.activity, dyn_eval.avg_timesteps as f64).unwrap();
    assert!(dyn_eval.avg_timesteps < 4.0);
    assert!(dyn_cost.energy_pj() < static_cost.energy_pj());
    assert!(dyn_cost.edp() < static_cost.edp());
    // σ–E is engaged for DT-SNN and negligible
    assert!(dyn_cost.energy.component(Component::SigmaE) > 0.0);
    assert!(dyn_cost.energy.fraction(Component::SigmaE) < 1e-3);
    assert_eq!(static_cost.energy.component(Component::SigmaE), 0.0);
}

#[test]
fn sigma_e_module_agrees_with_algorithmic_exit_policy() {
    let config = HardwareConfig::default();
    let module = SigmaEModule::new(&config).unwrap();
    let policy = ExitPolicy::entropy(0.35).unwrap();
    let mut rng = TensorRng::seed_from(33);
    let mut agree = 0;
    let n = 200;
    for _ in 0..n {
        let logits = Tensor::randn(&[1, 8], 0.0, 2.0, &mut rng);
        let probs = softmax_rows(&logits).unwrap();
        let algorithmic = policy.should_exit(probs.data());
        let hardware = module.evaluate(logits.data(), 0.35).unwrap().exit;
        agree += (algorithmic == hardware) as usize;
    }
    assert!(agree as f32 / n as f32 > 0.97, "agreement {agree}/{n}");
}

#[test]
fn lut_entropy_matches_exact_entropy_on_network_outputs() {
    let (mut net, _profile, frames, _labels) = quick_setup();
    let module = SigmaEModule::new(&HardwareConfig::default()).unwrap();
    let runner = DynamicInference::new(ExitPolicy::entropy(1e-7).unwrap(), 4).unwrap();
    for sample_frames in frames.iter().take(20) {
        let outcome = runner.run(&mut net, sample_frames).unwrap();
        let exact = exact_normalized_entropy(&outcome.probabilities);
        // reconstruct logits is not possible post-softmax; feed scaled probs
        // as logits to exercise the LUT path on realistic distributions
        let reading = module
            .evaluate(
                &outcome.probabilities.iter().map(|p| p.ln().max(-16.0)).collect::<Vec<_>>(),
                0.5,
            )
            .unwrap();
        assert!(
            (reading.entropy - exact).abs() < 0.03,
            "LUT {} vs exact {exact}",
            reading.entropy
        );
    }
}

#[test]
fn paper_scale_vgg16_maps_and_costs_consistently() {
    let config = HardwareConfig::default();
    let geometry = vgg16_geometry(32, 3, 10);
    let mapping = ChipMapping::map(&geometry, &config).unwrap();
    let model = CostModel::new(mapping, config).unwrap();
    let mut densities = vec![0.2f32; geometry.len()];
    densities[0] = 1.0;
    // DT-SNN at the paper's measured 1.46 average timesteps vs static T=4
    let static4 = model.inference_cost(&densities, 4.0, None).unwrap();
    let dt = model.inference_cost(&densities, 1.46, Some(10)).unwrap();
    let energy_ratio = dt.energy_pj() / static4.energy_pj();
    // paper Table II: 0.46× energy for VGG-16/CIFAR-10
    assert!(
        (0.30..=0.65).contains(&energy_ratio),
        "energy ratio {energy_ratio} outside the paper's band"
    );
    let edp_ratio = dt.edp() / static4.edp();
    // paper Fig. 4: ~80% EDP reduction on CIFAR-10 VGG-16
    assert!((0.08..=0.35).contains(&edp_ratio), "EDP ratio {edp_ratio}");
}
