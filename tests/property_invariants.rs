//! Property-based invariants spanning crates: entropy bounds, exit-policy
//! monotonicity, LIF dynamics, energy-model monotonicity, quantization.

use dt_snn::dtsnn::ExitPolicy;
use dt_snn::imc::{
    exact_normalized_entropy, quantize_dequantize, ChipMapping, CostModel, HardwareConfig,
    SigmaEModule,
};
use dt_snn::snn::{Layer, LifConfig, LifNeuron, Mode, Surrogate};
use dt_snn::tensor::{softmax_rows, Tensor};
use proptest::prelude::*;

fn probability_vector(k: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(0.01f32..10.0, k).prop_map(|raw| {
        let s: f32 = raw.iter().sum();
        raw.iter().map(|v| v / s).collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn normalized_entropy_is_in_unit_interval(p in probability_vector(10)) {
        let e = exact_normalized_entropy(&p);
        prop_assert!((0.0..=1.0).contains(&e));
    }

    #[test]
    fn entropy_of_concentrated_below_uniform(mass in 0.5f32..0.99, k in 3usize..12) {
        let mut p = vec![(1.0 - mass) / (k - 1) as f32; k];
        p[0] = mass;
        let concentrated = exact_normalized_entropy(&p);
        let uniform = exact_normalized_entropy(&vec![1.0 / k as f32; k]);
        prop_assert!(concentrated < uniform + 1e-6);
    }

    #[test]
    fn entropy_exit_is_monotone_in_theta(p in probability_vector(8), theta in 0.01f32..0.99) {
        let lo = ExitPolicy::entropy(theta).unwrap();
        let hi = ExitPolicy::entropy((theta + 0.3).min(1.0)).unwrap();
        // exiting under a strict threshold implies exiting under a lax one
        if lo.should_exit(&p) {
            prop_assert!(hi.should_exit(&p));
        }
    }

    #[test]
    fn lut_entropy_tracks_exact(p in probability_vector(10)) {
        let module = SigmaEModule::new(&HardwareConfig::default()).unwrap();
        let logits: Vec<f32> = p.iter().map(|v| v.ln()).collect();
        let reading = module.evaluate(&logits, 0.5).unwrap();
        let exact = exact_normalized_entropy(&p);
        prop_assert!((reading.entropy - exact).abs() < 0.05,
            "LUT {} vs exact {}", reading.entropy, exact);
    }

    #[test]
    fn softmax_rows_always_normalized(vals in proptest::collection::vec(-30.0f32..30.0, 12)) {
        let t = Tensor::from_vec(vals, &[3, 4]).unwrap();
        let p = softmax_rows(&t).unwrap();
        for r in 0..3 {
            let s: f32 = p.data()[r * 4..(r + 1) * 4].iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(p.data()[r * 4..(r + 1) * 4].iter().all(|v| v.is_finite() && *v >= 0.0));
        }
    }

    #[test]
    fn lif_spikes_are_binary_and_membrane_bounded(
        inputs in proptest::collection::vec(-2.0f32..2.0, 8),
        tau in 0.1f32..1.0,
        v_th in 0.2f32..2.0,
    ) {
        let mut lif = LifNeuron::new(LifConfig {
            tau,
            v_th,
            surrogate: Surrogate::Rectangular,
            ..LifConfig::default()
        });
        let frame = Tensor::from_vec(inputs, &[1, 8]).unwrap();
        for _ in 0..6 {
            let s = lif.forward(&frame, Mode::Eval).unwrap();
            prop_assert!(s.data().iter().all(|&v| v == 0.0 || v == 1.0));
            // hard reset: post-reset membrane never exceeds v_th
            let u = lif.membrane().unwrap();
            prop_assert!(u.data().iter().all(|&v| v <= v_th + 1e-5));
        }
    }

    #[test]
    fn energy_monotone_in_density_and_timesteps(
        d1 in 0.05f32..0.45,
        extra in 0.05f32..0.5,
        t in 1u32..6,
    ) {
        let config = HardwareConfig::default();
        let geometry = dt_snn::snn::vgg_small_geometry(&dt_snn::snn::ModelConfig::default());
        let mapping = ChipMapping::map(&geometry, &config).unwrap();
        let model = CostModel::new(mapping, config).unwrap();
        let lo = vec![d1; geometry.len()];
        let hi = vec![(d1 + extra).min(1.0); geometry.len()];
        let e_lo = model.timestep_energy(&lo).unwrap().total();
        let e_hi = model.timestep_energy(&hi).unwrap().total();
        prop_assert!(e_hi > e_lo);
        let c_t = model.inference_cost(&lo, t as f64, None).unwrap();
        let c_t1 = model.inference_cost(&lo, (t + 1) as f64, None).unwrap();
        prop_assert!(c_t1.energy_pj() > c_t.energy_pj());
        prop_assert!(c_t1.latency_cycles > c_t.latency_cycles);
    }

    #[test]
    fn quantization_is_idempotent(w in -1.0f32..1.0) {
        let once = quantize_dequantize(w, 1.0, 8);
        let twice = quantize_dequantize(once, 1.0, 8);
        prop_assert!((once - twice).abs() < 1e-6);
    }

    #[test]
    fn max_prob_and_margin_policies_bounded(p in probability_vector(6)) {
        let mp = ExitPolicy::max_prob(0.5).unwrap();
        let mg = ExitPolicy::margin(0.5).unwrap();
        prop_assert!((0.0..=1.0).contains(&mp.score(&p)));
        prop_assert!((0.0..=1.0).contains(&mg.score(&p)));
        prop_assert!(mg.score(&p) <= mp.score(&p) + 1e-6,
            "margin cannot exceed the top probability");
    }
}
