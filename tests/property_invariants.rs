//! Property-based invariants spanning crates: entropy bounds, exit-policy
//! monotonicity, LIF dynamics, energy-model monotonicity, quantization.
//!
//! Each property runs over `CASES` seeded random instances drawn from
//! [`TensorRng`], so failures reproduce exactly by case index.

use dt_snn::dtsnn::ExitPolicy;
use dt_snn::imc::{
    exact_normalized_entropy, quantize_dequantize, ChipMapping, CostModel, HardwareConfig,
    SigmaEModule,
};
use dt_snn::snn::{Layer, LifConfig, LifNeuron, Mode, Surrogate};
use dt_snn::tensor::{softmax_rows, Tensor, TensorRng};

const CASES: u64 = 64;

fn case_rng(case: u64) -> TensorRng {
    TensorRng::seed_from(0x1B4A_57E5 ^ case.wrapping_mul(0x9E37_79B9))
}

fn probability_vector(rng: &mut TensorRng, k: usize) -> Vec<f32> {
    let raw: Vec<f32> = (0..k).map(|_| rng.uniform(0.01, 10.0)).collect();
    let s: f32 = raw.iter().sum();
    raw.iter().map(|v| v / s).collect()
}

#[test]
fn normalized_entropy_is_in_unit_interval() {
    for case in 0..CASES {
        let mut rng = case_rng(case);
        let p = probability_vector(&mut rng, 10);
        let e = exact_normalized_entropy(&p);
        assert!((0.0..=1.0).contains(&e), "case {case}: entropy {e}");
    }
}

#[test]
fn entropy_of_concentrated_below_uniform() {
    for case in 0..CASES {
        let mut rng = case_rng(case);
        let mass = rng.uniform(0.5, 0.99);
        let k = 3 + rng.below(9);
        let mut p = vec![(1.0 - mass) / (k - 1) as f32; k];
        p[0] = mass;
        let concentrated = exact_normalized_entropy(&p);
        let uniform = exact_normalized_entropy(&vec![1.0 / k as f32; k]);
        assert!(concentrated < uniform + 1e-6, "case {case}: {concentrated} vs {uniform}");
    }
}

#[test]
fn entropy_exit_is_monotone_in_theta() {
    for case in 0..CASES {
        let mut rng = case_rng(case);
        let p = probability_vector(&mut rng, 8);
        let theta = rng.uniform(0.01, 0.99);
        let lo = ExitPolicy::entropy(theta).unwrap();
        let hi = ExitPolicy::entropy((theta + 0.3).min(1.0)).unwrap();
        // exiting under a strict threshold implies exiting under a lax one
        if lo.should_exit(&p) {
            assert!(hi.should_exit(&p), "case {case}: θ={theta}");
        }
    }
}

#[test]
fn lut_entropy_tracks_exact() {
    let module = SigmaEModule::new(&HardwareConfig::default()).unwrap();
    for case in 0..CASES {
        let mut rng = case_rng(case);
        let p = probability_vector(&mut rng, 10);
        let logits: Vec<f32> = p.iter().map(|v| v.ln()).collect();
        let reading = module.evaluate(&logits, 0.5).unwrap();
        let exact = exact_normalized_entropy(&p);
        assert!(
            (reading.entropy - exact).abs() < 0.05,
            "case {case}: LUT {} vs exact {exact}",
            reading.entropy
        );
    }
}

#[test]
fn softmax_rows_always_normalized() {
    for case in 0..CASES {
        let mut rng = case_rng(case);
        let vals: Vec<f32> = (0..12).map(|_| rng.uniform(-30.0, 30.0)).collect();
        let t = Tensor::from_vec(vals, &[3, 4]).unwrap();
        let p = softmax_rows(&t).unwrap();
        for r in 0..3 {
            let s: f32 = p.data()[r * 4..(r + 1) * 4].iter().sum();
            assert!((s - 1.0).abs() < 1e-4, "case {case}: row {r} sums to {s}");
            assert!(
                p.data()[r * 4..(r + 1) * 4].iter().all(|v| v.is_finite() && *v >= 0.0),
                "case {case}: row {r} not a distribution"
            );
        }
    }
}

#[test]
fn lif_spikes_are_binary_and_membrane_bounded() {
    for case in 0..CASES {
        let mut rng = case_rng(case);
        let inputs: Vec<f32> = (0..8).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let tau = rng.uniform(0.1, 1.0);
        let v_th = rng.uniform(0.2, 2.0);
        let mut lif = LifNeuron::new(LifConfig {
            tau,
            v_th,
            surrogate: Surrogate::Rectangular,
            ..LifConfig::default()
        });
        let frame = Tensor::from_vec(inputs, &[1, 8]).unwrap();
        for _ in 0..6 {
            let s = lif.forward(&frame, Mode::Eval).unwrap();
            assert!(
                s.data().iter().all(|&v| v == 0.0 || v == 1.0),
                "case {case}: non-binary spike"
            );
            // hard reset: post-reset membrane never exceeds v_th
            let u = lif.membrane().unwrap();
            assert!(
                u.data().iter().all(|&v| v <= v_th + 1e-5),
                "case {case}: membrane exceeds threshold"
            );
        }
    }
}

#[test]
fn energy_monotone_in_density_and_timesteps() {
    let config = HardwareConfig::default();
    let geometry = dt_snn::snn::vgg_small_geometry(&dt_snn::snn::ModelConfig::default());
    let mapping = ChipMapping::map(&geometry, &config).unwrap();
    let model = CostModel::new(mapping, config).unwrap();
    for case in 0..CASES {
        let mut rng = case_rng(case);
        let d1 = rng.uniform(0.05, 0.45);
        let extra = rng.uniform(0.05, 0.5);
        let t = 1 + rng.below(5);
        let lo = vec![d1; geometry.len()];
        let hi = vec![(d1 + extra).min(1.0); geometry.len()];
        let e_lo = model.timestep_energy(&lo).unwrap().total();
        let e_hi = model.timestep_energy(&hi).unwrap().total();
        assert!(e_hi > e_lo, "case {case}: {e_hi} !> {e_lo}");
        let c_t = model.inference_cost(&lo, t as f64, None).unwrap();
        let c_t1 = model.inference_cost(&lo, (t + 1) as f64, None).unwrap();
        assert!(c_t1.energy_pj() > c_t.energy_pj(), "case {case}");
        assert!(c_t1.latency_cycles > c_t.latency_cycles, "case {case}");
    }
}

#[test]
fn quantization_is_idempotent() {
    for case in 0..CASES {
        let mut rng = case_rng(case);
        let w = rng.uniform(-1.0, 1.0);
        let once = quantize_dequantize(w, 1.0, 8);
        let twice = quantize_dequantize(once, 1.0, 8);
        assert!((once - twice).abs() < 1e-6, "case {case}: {once} vs {twice}");
    }
}

#[test]
fn max_prob_and_margin_policies_bounded() {
    for case in 0..CASES {
        let mut rng = case_rng(case);
        let p = probability_vector(&mut rng, 6);
        let mp = ExitPolicy::max_prob(0.5).unwrap();
        let mg = ExitPolicy::margin(0.5).unwrap();
        assert!((0.0..=1.0).contains(&mp.score(&p)), "case {case}");
        assert!((0.0..=1.0).contains(&mg.score(&p)), "case {case}");
        assert!(
            mg.score(&p) <= mp.score(&p) + 1e-6,
            "case {case}: margin cannot exceed the top probability"
        );
    }
}
