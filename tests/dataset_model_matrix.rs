//! Cross-crate compatibility matrix: every dataset preset must flow through
//! both backbones, the trainer, the evaluators, and the hardware mapper.

use dt_snn::data::Preset;
use dt_snn::dtsnn::{DynamicInference, ExitPolicy, HardwareProfile};
use dt_snn::imc::HardwareConfig;
use dt_snn::snn::{
    resnet_small, resnet_small_density_map, resnet_small_geometry, vgg_small,
    vgg_small_density_map, vgg_small_geometry, Mode, ModelConfig,
};
use dt_snn::tensor::TensorRng;

fn model_config(ds: &dt_snn::data::Dataset) -> ModelConfig {
    ModelConfig {
        in_channels: ds.channels,
        image_size: ds.image_size,
        num_classes: ds.classes,
        width: 16,
        ..ModelConfig::default()
    }
}

#[test]
fn every_preset_runs_through_both_architectures() {
    for preset in Preset::all() {
        let ds = preset.generate(1, 3).unwrap();
        let t = preset.paper_timesteps();
        let cfg = model_config(&ds);
        let mut rng = TensorRng::seed_from(1);
        for arch in 0..2 {
            let mut net = if arch == 0 {
                vgg_small(&cfg, &mut rng).unwrap()
            } else {
                resnet_small(&cfg, &mut rng).unwrap()
            };
            // forward one sample through the full window
            let frames = &ds.test.samples[0].frames;
            let batched: Vec<_> = frames
                .iter()
                .map(|f| {
                    let mut d = vec![1];
                    d.extend_from_slice(f.dims());
                    f.reshape(&d).unwrap()
                })
                .collect();
            let outs = net.forward_sequence(&batched, t, Mode::Eval).unwrap();
            assert_eq!(outs.len(), t, "{}: wrong window", preset.name());
            assert_eq!(outs[0].dims(), &[1, ds.classes], "{}: wrong logits", preset.name());
            // dynamic inference also runs
            let runner = DynamicInference::new(ExitPolicy::entropy(0.5).unwrap(), t).unwrap();
            let outcome = runner.run(&mut net, frames).unwrap();
            assert!(outcome.timesteps_used >= 1 && outcome.timesteps_used <= t);
        }
    }
}

#[test]
fn both_architectures_map_onto_the_chip() {
    let ds = Preset::Cifar10.generate(1, 4).unwrap();
    let cfg = model_config(&ds);
    let hw = HardwareConfig::default();
    let vgg = HardwareProfile::new(
        &vgg_small_geometry(&cfg),
        vgg_small_density_map(),
        ds.classes,
        &hw,
    )
    .unwrap();
    let res = HardwareProfile::new(
        &resnet_small_geometry(&cfg),
        resnet_small_density_map(),
        ds.classes,
        &hw,
    )
    .unwrap();
    assert!(vgg.cost_model().mapping().total_crossbars() > 0);
    assert!(res.cost_model().mapping().total_crossbars() > 0);
}

#[test]
fn dvs_preset_has_temporal_frames_and_event_channels() {
    let ds = Preset::Cifar10Dvs.generate(1, 5).unwrap();
    assert_eq!(ds.frames_per_sample, 10);
    assert_eq!(ds.channels, 2);
    for s in ds.test.samples.iter().take(5) {
        assert_eq!(s.frames.len(), 10);
        for f in &s.frames {
            assert!(f.data().iter().all(|&v| v == 0.0 || v == 1.0), "events must be binary");
        }
    }
}
