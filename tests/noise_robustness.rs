//! Device-variation integration (Fig. 6B): deploying a trained network onto
//! noisy 4-bit RRAM degrades accuracy gracefully, and DT-SNN keeps working.

use dt_snn::data::{SyntheticVision, VisionConfig};
use dt_snn::dtsnn::{DynamicEvaluation, DynamicInference, ExitPolicy, StaticEvaluation};
use dt_snn::imc::{perturb_network, HardwareConfig};
use dt_snn::snn::{vgg_small, LossKind, ModelConfig, SgdConfig, Snn, Trainer, TrainerConfig};
use dt_snn::tensor::TensorRng;

fn setup() -> (Snn, dt_snn::data::Dataset) {
    let data = SyntheticVision::generate(
        &VisionConfig {
            classes: 4,
            train_size: 160,
            test_size: 80,
            prototype_similarity: 0.5,
            ..VisionConfig::default()
        },
        31,
    )
    .unwrap();
    let cfg = ModelConfig { num_classes: 4, width: 16, ..ModelConfig::default() };
    let mut rng = TensorRng::seed_from(31);
    let mut net = vgg_small(&cfg, &mut rng).unwrap();
    let trainer = Trainer::new(TrainerConfig {
        epochs: 6,
        batch_size: 32,
        timesteps: 4,
        loss: LossKind::PerTimestep,
        sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 1e-4 },
        seed: 9,
    })
    .unwrap();
    trainer.fit(&mut net, &data.train.frames(), &data.train.labels()).unwrap();
    (net, data)
}

#[test]
fn deployment_noise_degrades_gracefully() {
    let (mut net, data) = setup();
    let frames = data.test.frames();
    let labels = data.test.labels();
    let clean = StaticEvaluation::run(&mut net, &frames, &labels, 4).unwrap();
    assert!(clean.full_window_accuracy() > 0.5, "underfit: {}", clean.full_window_accuracy());

    let mut rng = TensorRng::seed_from(99);
    perturb_network(&mut net, &HardwareConfig::default(), &mut rng).unwrap();
    let noisy = StaticEvaluation::run(&mut net, &frames, &labels, 4).unwrap();
    // 20% device variation costs accuracy but must not collapse to chance
    let chance = 1.0 / data.classes as f32;
    assert!(
        noisy.full_window_accuracy() > chance + 0.15,
        "noisy accuracy {} collapsed",
        noisy.full_window_accuracy()
    );
    assert!(
        noisy.full_window_accuracy() <= clean.full_window_accuracy() + 0.05,
        "noise should not improve accuracy materially"
    );
}

#[test]
fn dtsnn_still_exits_early_under_device_noise() {
    let (mut net, data) = setup();
    let mut rng = TensorRng::seed_from(17);
    perturb_network(&mut net, &HardwareConfig::default(), &mut rng).unwrap();
    let runner = DynamicInference::new(ExitPolicy::entropy(0.4).unwrap(), 4).unwrap();
    let eval = DynamicEvaluation::run(
        &mut net,
        &runner,
        &data.test.frames(),
        &data.test.labels(),
        None,
    )
    .unwrap();
    assert!(eval.avg_timesteps < 4.0, "no early exits under noise");
    let chance = 1.0 / data.classes as f32;
    assert!(eval.accuracy > chance + 0.15, "accuracy {} collapsed", eval.accuracy);
}

#[test]
fn stronger_variation_hurts_more_on_average() {
    let (net, data) = setup();
    let frames = data.test.frames();
    let labels = data.test.labels();
    let acc_at = |sigma: f64, seed: u64| {
        let cfg = HardwareConfig { sigma_over_mu: sigma, ..HardwareConfig::default() };
        // average over noisy replicas of the same trained network
        let mut total = 0.0;
        for trial in 0..3u64 {
            let mut noisy = net.clone();
            let mut rng = TensorRng::seed_from(seed + trial);
            perturb_network(&mut noisy, &cfg, &mut rng).unwrap();
            total += StaticEvaluation::run(&mut noisy, &frames, &labels, 4)
                .unwrap()
                .full_window_accuracy();
        }
        total / 3.0
    };
    let lo = acc_at(0.05, 41);
    let hi = acc_at(0.60, 41);
    assert!(lo >= hi - 0.05, "σ/μ=5% accuracy {lo} should be ≥ σ/μ=60% accuracy {hi}");
}

#[test]
fn cloned_network_is_independent_of_the_original() {
    let (net, data) = setup();
    let frames = data.test.frames();
    let labels = data.test.labels();
    let mut original = net.clone();
    let mut noisy = net.clone();
    let mut rng = TensorRng::seed_from(55);
    perturb_network(&mut noisy, &HardwareConfig::default(), &mut rng).unwrap();
    // perturbing the clone must not affect the original's behaviour
    let a1 = StaticEvaluation::run(&mut original, &frames, &labels, 4).unwrap();
    let mut original2 = net.clone();
    let a2 = StaticEvaluation::run(&mut original2, &frames, &labels, 4).unwrap();
    assert_eq!(a1.accuracy_by_t, a2.accuracy_by_t);
}
