//! End-to-end integration: synthetic data → surrogate-gradient training →
//! entropy-gated dynamic inference, checking the paper's core claims at a
//! scale that runs in seconds.

use dt_snn::data::{SyntheticVision, VisionConfig};
use dt_snn::dtsnn::{
    DynamicEvaluation, DynamicInference, ExitPolicy, StaticEvaluation,
};
use dt_snn::snn::{
    vgg_small, LossKind, ModelConfig, SgdConfig, Snn, Trainer, TrainerConfig,
};
use dt_snn::tensor::TensorRng;

fn small_dataset(seed: u64) -> dt_snn::data::Dataset {
    SyntheticVision::generate(
        &VisionConfig {
            classes: 4,
            train_size: 160,
            test_size: 80,
            prototype_similarity: 0.6,
            ..VisionConfig::default()
        },
        seed,
    )
    .expect("valid dataset config")
}

fn trained_net(data: &dt_snn::data::Dataset, loss: LossKind, seed: u64) -> Snn {
    let cfg = ModelConfig {
        num_classes: data.classes,
        width: 16,
        ..ModelConfig::default()
    };
    let mut rng = TensorRng::seed_from(seed);
    let mut net = vgg_small(&cfg, &mut rng).expect("valid model config");
    let trainer = Trainer::new(TrainerConfig {
        epochs: 6,
        batch_size: 32,
        timesteps: 4,
        loss,
        sgd: SgdConfig { lr: 0.05, momentum: 0.9, weight_decay: 1e-4 },
        seed,
    })
    .expect("valid trainer config");
    trainer.fit(&mut net, &data.train.frames(), &data.train.labels()).expect("training succeeds");
    net
}

#[test]
fn dtsnn_reaches_iso_accuracy_with_fewer_timesteps() {
    let data = small_dataset(1);
    let mut net = trained_net(&data, LossKind::PerTimestep, 2);
    let frames = data.test.frames();
    let labels = data.test.labels();
    let static_eval = StaticEvaluation::run(&mut net, &frames, &labels, 4).unwrap();
    let static_acc = static_eval.full_window_accuracy();
    assert!(static_acc > 0.5, "static model underfit: {static_acc}");

    let runner = DynamicInference::new(ExitPolicy::entropy(0.3).unwrap(), 4).unwrap();
    let eval = DynamicEvaluation::run(&mut net, &runner, &frames, &labels, None).unwrap();
    // the headline claim: near-iso accuracy at fewer average timesteps
    assert!(eval.avg_timesteps < 4.0, "no early exits happened");
    assert!(
        eval.accuracy >= static_acc - 0.08,
        "dynamic accuracy {} collapsed vs static {static_acc}",
        eval.accuracy
    );
}

#[test]
fn larger_theta_monotonically_reduces_avg_timesteps() {
    let data = small_dataset(3);
    let mut net = trained_net(&data, LossKind::PerTimestep, 4);
    let frames = data.test.frames();
    let labels = data.test.labels();
    let mut last = f32::INFINITY;
    for theta in [0.05f32, 0.2, 0.5, 0.9] {
        let runner = DynamicInference::new(ExitPolicy::entropy(theta).unwrap(), 4).unwrap();
        let eval = DynamicEvaluation::run(&mut net, &runner, &frames, &labels, None).unwrap();
        assert!(
            eval.avg_timesteps <= last + 1e-6,
            "θ={theta}: avg T̂ {} increased over {last}",
            eval.avg_timesteps
        );
        last = eval.avg_timesteps;
    }
}

#[test]
fn early_exits_happen_on_easier_samples() {
    let data = small_dataset(5);
    let mut net = trained_net(&data, LossKind::PerTimestep, 6);
    let frames = data.test.frames();
    let labels = data.test.labels();
    let difficulties = data.test.difficulties();
    let runner = DynamicInference::new(ExitPolicy::entropy(0.15).unwrap(), 4).unwrap();
    let eval =
        DynamicEvaluation::run(&mut net, &runner, &frames, &labels, Some(&difficulties)).unwrap();
    let early: Vec<f32> = eval
        .samples
        .iter()
        .filter(|s| s.timesteps_used == 1)
        .map(|s| s.difficulty)
        .collect();
    let late: Vec<f32> = eval
        .samples
        .iter()
        .filter(|s| s.timesteps_used == 4)
        .map(|s| s.difficulty)
        .collect();
    if early.len() >= 5 && late.len() >= 5 {
        let mean = |v: &[f32]| v.iter().sum::<f32>() / v.len() as f32;
        assert!(
            mean(&early) < mean(&late),
            "early bucket difficulty {} ≥ late bucket {}",
            mean(&early),
            mean(&late)
        );
    }
}

#[test]
fn per_timestep_loss_lifts_first_timestep_accuracy() {
    let data = small_dataset(7);
    let mut eq9 = trained_net(&data, LossKind::MeanOutput, 8);
    let mut eq10 = trained_net(&data, LossKind::PerTimestep, 8);
    let frames = data.test.frames();
    let labels = data.test.labels();
    let e9 = StaticEvaluation::run(&mut eq9, &frames, &labels, 4).unwrap();
    let e10 = StaticEvaluation::run(&mut eq10, &frames, &labels, 4).unwrap();
    // Fig. 7's claim, with slack for the small scale: Eq. 10's first-timestep
    // accuracy is at least as good as Eq. 9's.
    assert!(
        e10.accuracy_by_t[0] >= e9.accuracy_by_t[0] - 0.05,
        "Eq.10 T=1 {} much worse than Eq.9 T=1 {}",
        e10.accuracy_by_t[0],
        e9.accuracy_by_t[0]
    );
}

#[test]
fn full_window_dynamic_prediction_matches_static() {
    let data = small_dataset(9);
    let mut net = trained_net(&data, LossKind::PerTimestep, 10);
    // θ → 0 never exits early, so DT-SNN must reproduce static predictions
    let runner = DynamicInference::new(ExitPolicy::entropy(1e-7).unwrap(), 4).unwrap();
    for sample in data.test.samples.iter().take(10) {
        let dynamic = runner.run(&mut net, &sample.frames).unwrap();
        let static_pred =
            dt_snn::dtsnn::static_inference(&mut net, &sample.frames, 4).unwrap();
        assert_eq!(dynamic.prediction, static_pred);
        assert_eq!(dynamic.timesteps_used, 4);
    }
}
